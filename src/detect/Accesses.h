//===- detect/Accesses.h - Use/free/alloc extraction -----------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extraction of the high-level operations of Section 4.1/5.3 from the
/// low-level record stream:
///
///  - a *free* is an object-pointer write of null; an *allocation* is an
///    object-pointer write of a valid object;
///  - a *use* is an object-pointer read whose value is later dereferenced.
///    Dereferences carry only the object id, so each one is matched to the
///    nearest previous pointer read in the same task that produced that
///    object id -- the paper's deliberately unsound heuristic whose
///    mismatches cause Type III false positives;
///  - guarded branches are matched to pointers the same way;
///  - every extracted item is annotated with its enclosing method frame
///    (reconstructed from MethodEnter/Exit) and the lockset held at its
///    record (for mutual-exclusion filtering).
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_DETECT_ACCESSES_H
#define CAFA_DETECT_ACCESSES_H

#include "trace/Trace.h"

#include <vector>

namespace cafa {

class DerefResolver;

/// One extracted use, free, or allocation.
struct PtrAccess {
  /// Index of the PtrRead (use) / PtrWrite (free, alloc) record.
  uint32_t Record = 0;
  TaskId Task;
  VarId Var;
  MethodId Method;
  uint32_t Pc = 0;
  /// Enclosing frame id (0 when outside any frame; cannot happen for
  /// interpreter-emitted accesses).
  uint64_t Frame = 0;
  /// For uses: the record index of the first dereference matched to this
  /// read.
  uint32_t DerefRecord = 0;
  /// Sorted lock ids held when the record was emitted.
  std::vector<uint32_t> Lockset;
};

/// One extracted guarded branch (if-eqz / if-nez / if-eq on a pointer).
struct GuardBranch {
  uint32_t Record = 0;
  TaskId Task;
  BranchKind Kind = BranchKind::IfEqz;
  /// The pointer cell the branch was matched to (nearest previous read of
  /// the tested object), or invalid if no read matched.
  VarId Var;
  MethodId Method;
  uint32_t Pc = 0;
  uint32_t TargetPc = 0;
  uint64_t Frame = 0;
};

/// All extracted accesses of one trace.
struct AccessDb {
  std::vector<PtrAccess> Uses;
  std::vector<PtrAccess> Frees;
  std::vector<PtrAccess> Allocs;
  std::vector<GuardBranch> Branches;
  /// Pointer reads whose value was never dereferenced (not uses).
  uint64_t UnmatchedReads = 0;
  /// Dereferences with no matching previous read (runtime-produced
  /// objects handed straight to handlers; never uses).
  uint64_t UnmatchedDerefs = 0;
};

/// Streaming consumer of extracted accesses.  Callbacks fire during one
/// forward scan of the records: onFree/onAlloc/onBranch at their own
/// record in record order; onUse at the *dereference* record that
/// promotes the read (so uses arrive in promotion order -- exactly the
/// order of AccessDb::Uses -- and Use.Record is NOT monotone across
/// calls); onPtrRead at every non-null pointer read in record order
/// (passed by field so the common case copies nothing -- the windowed
/// scan uses it to reconstruct a use *at its read record*, where pairs
/// against earlier frees are admitted); onRecordDone after each
/// record's extraction work, which is the windowed scan's admission
/// cursor -- returning false stops the scan (deadline cut).
/// UseOrdinal counts promotions and equals the use's index in the
/// batch AccessDb::Uses.
class AccessSink {
public:
  virtual ~AccessSink();
  virtual void onUse(PtrAccess Use, size_t UseOrdinal) {
    (void)Use;
    (void)UseOrdinal;
  }
  virtual void onFree(PtrAccess Free) { (void)Free; }
  virtual void onAlloc(PtrAccess Alloc) { (void)Alloc; }
  virtual void onBranch(GuardBranch Br) { (void)Br; }
  virtual void onPtrRead(uint32_t Record, TaskId Task, VarId Var,
                         MethodId Method, uint32_t Pc, uint64_t Frame,
                         const std::vector<uint32_t> &SortedLockset) {
    (void)Record;
    (void)Task;
    (void)Var;
    (void)Method;
    (void)Pc;
    (void)Frame;
    (void)SortedLockset;
  }
  virtual bool onRecordDone(uint32_t Record) {
    (void)Record;
    return true;
  }
};

/// Tail counters of one streaming extraction.
struct StreamExtractCounts {
  uint64_t UnmatchedReads = 0;
  uint64_t UnmatchedDerefs = 0;
};

/// Single-pass streaming extraction: runs the same scan as
/// extractAccesses but hands every extracted item to \p Sink instead of
/// accumulating an AccessDb, so windowed analyses never hold the full
/// access tables resident.  extractAccesses is this function plus an
/// accumulating sink; the two are byte-identical by construction.
StreamExtractCounts streamAccesses(const Trace &T,
                                   const DerefResolver *Resolver,
                                   AccessSink &Sink);

/// Scans \p T once and extracts all high-level accesses.
///
/// When \p Resolver is provided (the Section 6.3 static-dataflow
/// improvement), dereferences and guard branches whose defining load is
/// statically unique are matched to the dynamic read of exactly that
/// load pc in the same frame; only ambiguous sites fall back to the
/// nearest-previous-read heuristic.  This removes the Type III false
/// positives at the cost of requiring the application bytecode.
AccessDb extractAccesses(const Trace &T, const TaskIndex &Index,
                         const DerefResolver *Resolver = nullptr);

} // namespace cafa

#endif // CAFA_DETECT_ACCESSES_H
