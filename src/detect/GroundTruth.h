//===- detect/GroundTruth.h - Seeded-race labels and evaluation -*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ground truth for the evaluation.  The paper's authors triaged every
/// reported race by hand into harmful races and three false-positive
/// classes (Section 6.3).  Our application models seed each race on
/// purpose, so they can label the static (use site, free site) pairs they
/// plant; the evaluation harness joins detector reports against these
/// labels to produce the Table 1 columns.  The detector itself never sees
/// the labels.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_DETECT_GROUNDTRUTH_H
#define CAFA_DETECT_GROUNDTRUTH_H

#include "detect/RaceReport.h"

#include <string>
#include <vector>

namespace cafa {

/// How a seeded race should be judged when reported.
enum class RaceLabel : uint8_t {
  /// A true use-after-free hazard.
  Harmful,
  /// Type I FP: ordered in reality by an uninstrumented listener.
  FalseTypeI,
  /// Type II FP: benign, guarded by state the heuristics cannot see.
  FalseTypeII,
  /// Type III FP: the dereference was matched to the wrong pointer read.
  FalseTypeIII,
};

/// Returns a short display name ("harmful", "FP-I", ...).
const char *raceLabelName(RaceLabel Label);

/// One labeled static pair.
struct GroundTruthEntry {
  MethodId UseMethod;
  uint32_t UsePc = 0;
  MethodId FreeMethod;
  uint32_t FreePc = 0;
  RaceLabel Label = RaceLabel::Harmful;
  /// For harmful races: the Table 1 category the seed is designed to
  /// fall into (checked against the detector's classification).
  RaceCategory ExpectedCategory = RaceCategory::IntraThread;
  /// Human explanation used in reports ("Figure 1 providerUtils race").
  std::string Note;
};

/// All labels for one application model.
struct GroundTruth {
  std::vector<GroundTruthEntry> Entries;
};

/// One row of Table 1.
struct Table1Row {
  std::string App;
  uint64_t Events = 0;
  uint64_t Reported = 0;
  uint64_t TrueA = 0; ///< intra-thread violations
  uint64_t TrueB = 0; ///< inter-thread violations
  uint64_t TrueC = 0; ///< conventional violations
  uint64_t FpI = 0;
  uint64_t FpII = 0;
  uint64_t FpIII = 0;
  /// Reported races with no ground-truth label (must be 0 for calibrated
  /// app models; nonzero values are surfaced, never hidden).
  uint64_t Unexpected = 0;
  /// Labeled races the detector failed to report.
  uint64_t Missed = 0;

  uint64_t trueTotal() const { return TrueA + TrueB + TrueC; }
};

/// Joins \p Report against \p Truth.  Harmful entries are counted under
/// the *detector's* (a)/(b)/(c) classification; FP entries under their
/// labeled type.  Reported races with no label land in Unexpected,
/// labeled pairs that were not reported in Missed.
Table1Row evaluateReport(const RaceReport &Report, const GroundTruth &Truth,
                         const Trace &T, const std::string &AppName);

/// Renders rows in the layout of Table 1, with a totals line.
std::string renderTable1(const std::vector<Table1Row> &Rows);

} // namespace cafa

#endif // CAFA_DETECT_GROUNDTRUTH_H
