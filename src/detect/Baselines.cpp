//===- detect/Baselines.cpp - Low-level race detector baseline ---------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "detect/Baselines.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

using namespace cafa;

namespace {

/// One memory access in the low-level scan.
struct MemAccess {
  uint32_t Record;
  TaskId Task;
  MethodId Method;
  uint32_t Pc;
  bool IsWrite;
  /// Index into a shared lockset pool (locksets repeat heavily).
  uint32_t LocksetIdx;
};

/// Static identity of a race: the unordered pair of code locations plus
/// the field (so the same code racing on two fields counts twice, as a
/// data-race report would list them).
struct StaticPairKey {
  uint32_t MethodA, PcA, MethodB, PcB, Var;
  bool operator<(const StaticPairKey &O) const {
    return std::tie(MethodA, PcA, MethodB, PcB, Var) <
           std::tie(O.MethodA, O.PcA, O.MethodB, O.PcB, O.Var);
  }
};

bool locksetsIntersect(const std::vector<uint32_t> &A,
                       const std::vector<uint32_t> &B) {
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] == B[J])
      return true;
    if (A[I] < B[J])
      ++I;
    else
      ++J;
  }
  return false;
}

} // namespace

NaiveRaceResult cafa::detectLowLevelRaces(const Trace &T,
                                          const TaskIndex &Index,
                                          const HbIndex &Hb,
                                          const NaiveDetectorOptions &Opt) {
  NaiveRaceResult Result;

  // Collect accesses per cell, tracking held locks per task as we go.
  std::unordered_map<uint32_t, std::vector<MemAccess>> ByVar;
  std::vector<std::vector<uint32_t>> LockStacks(T.numTasks());
  std::vector<std::vector<uint32_t>> LocksetPool;
  std::unordered_map<std::string, uint32_t> LocksetIndex;

  auto internLockset = [&](const std::vector<uint32_t> &Stack) -> uint32_t {
    std::vector<uint32_t> Sorted = Stack;
    std::sort(Sorted.begin(), Sorted.end());
    std::string Key(reinterpret_cast<const char *>(Sorted.data()),
                    Sorted.size() * sizeof(uint32_t));
    auto [It, Inserted] = LocksetIndex.emplace(
        Key, static_cast<uint32_t>(LocksetPool.size()));
    if (Inserted)
      LocksetPool.push_back(std::move(Sorted));
    return It->second;
  };

  for (uint32_t I = 0, E = static_cast<uint32_t>(T.numRecords()); I != E;
       ++I) {
    const TraceRecord &Rec = T.record(I);
    switch (Rec.Kind) {
    case OpKind::LockAcquire:
      LockStacks[Rec.Task.index()].push_back(
          static_cast<uint32_t>(Rec.Arg0));
      break;
    case OpKind::LockRelease:
      if (!LockStacks[Rec.Task.index()].empty())
        LockStacks[Rec.Task.index()].pop_back();
      break;
    case OpKind::Read:
    case OpKind::Write:
    case OpKind::PtrRead:
    case OpKind::PtrWrite: {
      MemAccess Acc;
      Acc.Record = I;
      Acc.Task = Rec.Task;
      Acc.Method = Rec.Method;
      Acc.Pc = Rec.Pc;
      Acc.IsWrite =
          Rec.Kind == OpKind::Write || Rec.Kind == OpKind::PtrWrite;
      Acc.LocksetIdx = internLockset(LockStacks[Rec.Task.index()]);
      ByVar[static_cast<uint32_t>(Rec.Arg0)].push_back(Acc);
      break;
    }
    default:
      break;
    }
  }

  // Deterministic cell order.
  std::vector<uint32_t> Vars;
  Vars.reserve(ByVar.size());
  for (const auto &[Var, Accs] : ByVar)
    Vars.push_back(Var);
  std::sort(Vars.begin(), Vars.end());

  std::set<StaticPairKey> Seen;
  for (uint32_t Var : Vars) {
    const std::vector<MemAccess> &Accs = ByVar[Var];
    uint64_t Pairs = 0;
    bool Capped = false;
    for (size_t A = 0; A < Accs.size() && !Capped; ++A) {
      for (size_t B = A + 1; B < Accs.size(); ++B) {
        if (++Pairs > Opt.MaxPairsPerCell) {
          // Count the capped cell once; the scan of this cell stops.
          ++Result.CappedPairs;
          Capped = true;
          break;
        }
        const MemAccess &X = Accs[A];
        const MemAccess &Y = Accs[B];
        if (!X.IsWrite && !Y.IsWrite)
          continue;
        if (X.Task == Y.Task)
          continue;
        // Static dedup first: the happens-before query is the expensive
        // part and repeated static pairs dominate.
        StaticPairKey Key = X.Pc <= Y.Pc
                                ? StaticPairKey{X.Method.value(), X.Pc,
                                                Y.Method.value(), Y.Pc, Var}
                                : StaticPairKey{Y.Method.value(), Y.Pc,
                                                X.Method.value(), X.Pc, Var};
        bool AlreadyStatic = Seen.count(Key) != 0;
        if (AlreadyStatic)
          continue;
        if (Opt.LocksetFilter &&
            locksetsIntersect(LocksetPool[X.LocksetIdx],
                              LocksetPool[Y.LocksetIdx]))
          continue;
        if (Hb.ordered(X.Record, Y.Record))
          continue;
        ++Result.DynamicRaces;
        Seen.insert(Key);
        ++Result.StaticRaces;
      }
    }
  }
  return Result;
}
