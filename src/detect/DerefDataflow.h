//===- detect/DerefDataflow.h - Static deref-to-load matching --*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The improvement Section 6.3 proposes for Type III false positives:
/// "performing a static data flow analysis on the Dalvik bytecode of the
/// applications to accurately match the dereference instructions to the
/// corresponding pointer reads".
///
/// This is an intra-method reaching-definitions analysis over the
/// mini-Dalvik IR.  For every *pointer-querying site* -- a dereference
/// (virtual invoke or field access receiver) or a guarded branch's
/// tested register -- it determines whether the register's value comes
/// from exactly one object-pointer load (iget-object / sget-object) on
/// every path, and if so, which load.  The extractor then matches the
/// site to the dynamic read of that exact load pc within the same frame,
/// falling back to the nearest-previous-read heuristic where the static
/// answer is ambiguous.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_DETECT_DEREFDATAFLOW_H
#define CAFA_DETECT_DEREFDATAFLOW_H

#include "ir/Module.h"

#include <unordered_map>

namespace cafa {

/// Precomputed deref-to-load resolution for a whole module.
class DerefResolver {
public:
  /// Analyzes every method of \p M.
  explicit DerefResolver(const Module &M);

  /// Sentinel for "no unique defining load".
  static constexpr int64_t Unresolved = -1;

  /// Returns the pc of the unique object-pointer load whose value is
  /// queried (dereferenced or null-tested) by the instruction at
  /// (\p Method, \p SitePc), or Unresolved.
  int64_t loadFor(MethodId Method, uint32_t SitePc) const;

  /// Sites whose defining load is unique (matched precisely).
  uint64_t resolvedSites() const { return NumResolved; }
  /// Sites left to the runtime heuristic.
  uint64_t unresolvedSites() const { return NumUnresolved; }

private:
  void analyzeMethod(const Module &M, MethodId Method);

  /// (method id << 32 | pc) -> defining load pc.
  std::unordered_map<uint64_t, uint32_t> Table;
  uint64_t NumResolved = 0;
  uint64_t NumUnresolved = 0;
};

} // namespace cafa

#endif // CAFA_DETECT_DEREFDATAFLOW_H
