//===- detect/Baselines.h - Low-level race detector baseline ---*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The naive low-level detector Section 4.1 argues against: every pair of
/// conflicting memory accesses (read-write or write-write on the same
/// cell, scalar or pointer) that is unordered under the causality model
/// counts as a race.  On ConnectBot the paper reports 1,664 such races in
/// a 30-second trace -- versus 3 use-free reports -- which is the shape
/// the naive_vs_cafa benchmark reproduces.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_DETECT_BASELINES_H
#define CAFA_DETECT_BASELINES_H

#include "hb/HbIndex.h"
#include "trace/Trace.h"

namespace cafa {

/// Result of the naive low-level scan.
struct NaiveRaceResult {
  /// Distinct static races: unordered (pc, pc, cell) pairs with a write.
  uint64_t StaticRaces = 0;
  /// Dynamic pairs that established a new static race (repeats of an
  /// already-counted static pair are skipped before the HB query).
  uint64_t DynamicRaces = 0;
  /// Dynamic pairs skipped by the per-cell scan cap.
  uint64_t CappedPairs = 0;
};

/// Options for the naive detector.
struct NaiveDetectorOptions {
  /// Cap on dynamic pairs examined per memory cell (keeps the scan
  /// tractable on noisy cells; capped cells are counted, not hidden).
  uint64_t MaxPairsPerCell = 400'000;
  /// Suppress pairs whose accesses hold a common lock (both the paper's
  /// tool and conventional detectors do).
  bool LocksetFilter = true;
};

/// Counts low-level races in \p T under the causality model \p Hb.
NaiveRaceResult detectLowLevelRaces(const Trace &T, const TaskIndex &Index,
                                    const HbIndex &Hb,
                                    const NaiveDetectorOptions &Options);

} // namespace cafa

#endif // CAFA_DETECT_BASELINES_H
