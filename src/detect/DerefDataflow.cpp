//===- detect/DerefDataflow.cpp - Static deref-to-load matching --------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "detect/DerefDataflow.h"

#include <cassert>
#include <vector>

using namespace cafa;

namespace {

/// Abstract register value for the reaching-load analysis.
/// Lattice: Unreached (bottom) < Load(pc) < NotAUniqueLoad (top).
struct AbsVal {
  static constexpr int32_t Unreached = -2;
  static constexpr int32_t Top = -1;
  int32_t V = Unreached;

  static AbsVal load(uint32_t Pc) { return {static_cast<int32_t>(Pc)}; }
  static AbsVal top() { return {Top}; }
  static AbsVal bottom() { return {Unreached}; }

  bool isLoad() const { return V >= 0; }

  /// Lattice join; returns true if this changed.
  bool joinWith(AbsVal O) {
    if (O.V == Unreached || V == O.V)
      return false;
    if (V == Unreached) {
      V = O.V;
      return true;
    }
    if (V == Top)
      return false;
    V = Top; // two different loads (or load vs top) merge to top
    return true;
  }
};

/// The register an instruction queries for an object pointer (the
/// receiver of a deref, or the tested pointer of a guard branch), or
/// NoReg if the instruction queries none.
Reg queriedRegister(const Instr &I) {
  switch (I.Op) {
  case Opcode::InvokeVirtual:
  case Opcode::IPutObject:
  case Opcode::IPut:
    return I.A;
  case Opcode::IGetObject:
  case Opcode::IGet:
    return I.B;
  case Opcode::IfEqz:
  case Opcode::IfNez:
  case Opcode::IfEq: // the logged object is register A's
    return I.A;
  default:
    return NoReg;
  }
}

} // namespace

DerefResolver::DerefResolver(const Module &M) {
  for (uint32_t I = 0, E = static_cast<uint32_t>(M.numMethods()); I != E;
       ++I)
    analyzeMethod(M, MethodId(I));
}

void DerefResolver::analyzeMethod(const Module &M, MethodId Method) {
  const MethodDef &Def = M.methodDef(Method);
  uint32_t NumPcs = static_cast<uint32_t>(Def.Code.size());
  uint32_t NumRegs = Def.NumRegs;
  if (NumPcs == 0)
    return;

  // In-state per pc: the abstract register file before the instruction.
  std::vector<std::vector<AbsVal>> In(
      NumPcs, std::vector<AbsVal>(NumRegs, AbsVal::bottom()));
  // Entry: arguments are runtime-provided objects, not loads.
  for (AbsVal &V : In[0])
    V = AbsVal::top();

  std::vector<bool> Dirty(NumPcs, false);
  std::vector<uint32_t> Worklist = {0};
  Dirty[0] = true;

  auto propagate = [&](uint32_t To, const std::vector<AbsVal> &State) {
    if (To >= NumPcs)
      return;
    bool Changed = false;
    for (uint32_t R = 0; R != NumRegs; ++R)
      Changed |= In[To][R].joinWith(State[R]);
    if (Changed && !Dirty[To]) {
      Dirty[To] = true;
      Worklist.push_back(To);
    }
  };

  while (!Worklist.empty()) {
    uint32_t Pc = Worklist.back();
    Worklist.pop_back();
    Dirty[Pc] = false;
    const Instr &I = Def.Code[Pc];

    // Transfer function.
    std::vector<AbsVal> Out = In[Pc];
    switch (I.Op) {
    case Opcode::IGetObject:
    case Opcode::SGetObject:
      Out[I.A] = AbsVal::load(Pc);
      break;
    case Opcode::Move:
      Out[I.A] = Out[I.B];
      break;
    case Opcode::ConstNull:
    case Opcode::ConstInt:
    case Opcode::NewInstance:
    case Opcode::AddInt:
    case Opcode::IGet:
    case Opcode::SGet:
    case Opcode::ForkThread:
      // Writes a non-load value into A.
      if (I.A != NoReg && I.A < NumRegs)
        Out[I.A] = AbsVal::top();
      break;
    default:
      break; // no register definition
    }

    // Successors.
    if (isBranch(I.Op)) {
      propagate(static_cast<uint32_t>(static_cast<int64_t>(Pc) + I.Imm),
                Out);
      if (I.Op != Opcode::Goto)
        propagate(Pc + 1, Out);
    } else if (I.Op != Opcode::ReturnVoid) {
      propagate(Pc + 1, Out);
    }
  }

  // Harvest the sites.
  for (uint32_t Pc = 0; Pc != NumPcs; ++Pc) {
    Reg Queried = queriedRegister(Def.Code[Pc]);
    if (Queried == NoReg || Queried >= NumRegs)
      continue;
    AbsVal V = In[Pc][Queried];
    if (V.isLoad()) {
      Table[(static_cast<uint64_t>(Method.value()) << 32) | Pc] =
          static_cast<uint32_t>(V.V);
      ++NumResolved;
    } else {
      ++NumUnresolved;
    }
  }
}

int64_t DerefResolver::loadFor(MethodId Method, uint32_t SitePc) const {
  auto It =
      Table.find((static_cast<uint64_t>(Method.value()) << 32) | SitePc);
  return It == Table.end() ? Unresolved
                           : static_cast<int64_t>(It->second);
}
