//===- detect/DetectShared.h - Shared detector predicates ------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pure per-pair predicates shared by the batch pair scan
/// (UseFreeDetector.cpp) and the windowed streaming scan
/// (WindowedScan.cpp).  Both scans must apply byte-identical filter
/// logic -- the differential suite pins their reports against each
/// other -- so the predicates live here exactly once.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_DETECT_DETECTSHARED_H
#define CAFA_DETECT_DETECTSHARED_H

#include "detect/Accesses.h"

#include <tuple>
#include <vector>

namespace cafa {
namespace detail {

/// Returns true if both tasks are events processed by the same looper
/// (the scope in which the commutativity heuristics apply).
inline bool sameLooperEvents(const Trace &T, TaskId A, TaskId B) {
  const TaskInfo &IA = T.taskInfo(A);
  const TaskInfo &IB = T.taskInfo(B);
  return IA.Kind == TaskKind::Event && IB.Kind == TaskKind::Event &&
         IA.Queue.isValid() && IA.Queue == IB.Queue;
}

/// Returns true if two sorted locksets share an element.
inline bool locksetsIntersect(const std::vector<uint32_t> &A,
                              const std::vector<uint32_t> &B) {
  size_t I = 0, J = 0;
  while (I < A.size() && J < B.size()) {
    if (A[I] == B[J])
      return true;
    if (A[I] < B[J])
      ++I;
    else
      ++J;
  }
  return false;
}

/// Figure 6: returns true if a use at \p UsePc is inside the region the
/// branch proves non-null.
inline bool pcInGuardRegion(const Trace &T, const GuardBranch &Br,
                            uint32_t UsePc) {
  uint32_t CodeSize = T.methodInfo(Br.Method).CodeSize;
  if (Br.Kind == BranchKind::IfEqz) {
    // Logged when NOT taken; the fall-through path is non-null.
    if (Br.TargetPc > Br.Pc)
      return UsePc > Br.Pc && UsePc < Br.TargetPc; // forward: until target
    return UsePc > Br.Pc && UsePc < CodeSize;      // backward: to func end
  }
  // IfNez / IfEq: logged when taken; the target path is non-null.
  if (Br.TargetPc > Br.Pc)
    return UsePc >= Br.TargetPc && UsePc < CodeSize; // forward jump
  return UsePc >= Br.TargetPc && UsePc < Br.Pc;      // backward jump
}

/// Returns true if \p Br guards \p Use: same task, same frame instance,
/// same matched pointer, branch executed before the use, use pc inside
/// the non-null region.
inline bool branchGuardsUse(const Trace &T, const GuardBranch &Br,
                            const PtrAccess &Use) {
  if (Br.Task != Use.Task || Br.Frame != Use.Frame ||
      !Br.Var.isValid() || Br.Var != Use.Var)
    return false;
  if (Br.Record >= Use.Record)
    return false;
  return pcInGuardRegion(T, Br, Use.Pc);
}

/// Deduplication key: the static (use site, free site) pair.
struct StaticKey {
  uint32_t UseMethod, UsePc, FreeMethod, FreePc;
  bool operator<(const StaticKey &O) const {
    return std::tie(UseMethod, UsePc, FreeMethod, FreePc) <
           std::tie(O.UseMethod, O.UsePc, O.FreeMethod, O.FreePc);
  }
};

} // namespace detail
} // namespace cafa

#endif // CAFA_DETECT_DETECTSHARED_H
