//===- hb/HbIndex.h - The CAFA causality model ------------------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Construction of the happens-before relation for a trace under either
/// the CAFA causality model (Section 3.3) or the conventional
/// thread-based model Table 1 compares against.
///
/// CAFA rules implemented:
///  - program order within each task (but *not* across events of a
///    looper thread);
///  - fork/join and notify/wait;
///  - event listener: register(t,l) before perform(e,l);
///  - send: send(t,e,d) / sendAtFront(t,e) before begin(e);
///  - external input: externally generated events are chained;
///  - Binder IPC: ipc-send(txn) before ipc-recv(txn);
///  - atomicity: same-looper events e1,e2 with begin(e1) < end(e2) are
///    fully ordered end(e1) < begin(e2);
///  - event queue rules 1-4 over ordered sends (delay comparison,
///    sendAtFront both directions).
/// The last two are applied to a fixpoint because they consume the
/// relation they extend.  Locks contribute no edges in either model (the
/// predictive relaxation of Section 3.1); locksets are checked at
/// detection time instead.
///
/// The conventional model replaces all event-aware rules with a total
/// order over each looper's events in observed execution order.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_HB_HBINDEX_H
#define CAFA_HB_HBINDEX_H

#include "hb/HbGraph.h"
#include "hb/Reachability.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace cafa {

class WorkerPool;

/// Which causality model to build.
enum class OrderingModel : uint8_t {
  /// The paper's event-aware model.
  Cafa,
  /// Thread-based baseline: every looper's events totally ordered, no
  /// event-queue/atomicity/listener/external rules.
  Conventional,
};

/// Build-time options (rule toggles exist for the ablation benchmarks).
/// ReachMode (the reachability oracle selection) lives in Reachability.h.
struct HbOptions {
  OrderingModel Model = OrderingModel::Cafa;
  /// Reachability oracle request.  Auto resolves through the CAFA_REACH
  /// environment variable (request > env > Incremental, mirroring the
  /// thread knobs' 0 = auto convention; see resolveReachMode).  Tests
  /// that assert mode-specific ladder behavior pin an explicit mode so
  /// the env-forced CI legs cannot skew them.
  ReachMode Reach = ReachMode::Auto;
  bool EnableAtomicityRule = true;
  bool EnableQueueRules = true;
  bool EnableListenerRule = true;
  bool EnableExternalInputRule = true;
  /// Cap on fixpoint rounds.  Rounds are edge-capped (see
  /// HbIndex.cpp::applyDerivedRules), so long send chains legitimately
  /// take several rounds; the cap guards against bugs, not inputs.
  uint32_t MaxFixpointRounds = 64;
  /// Graceful degradation, memory rung: when nonzero, the reachability
  /// oracle is stepped down the ladder Incremental -> Closure -> Chain
  /// -> Bfs until estimateReachabilityMemory() fits under this many
  /// bytes.
  /// The oracles answer queries identically, so stepping down changes
  /// build time and memory but never the resulting reports.  0 = off.
  size_t MemLimitBytes = 0;
  /// Graceful degradation, time rung: when positive, the derived-rule
  /// fixpoint stops starting new rounds once this much wall time (ms)
  /// has elapsed since construction began.  The relation is then an
  /// under-approximation -- missing HB edges can only *add* race
  /// candidates, never hide one -- and degradation().DeadlineExceeded
  /// is set so downstream reports get flagged partial.  0 = off.
  double DeadlineMillis = 0;
  /// Analysis worker threads (the --analysis-threads knob): closure row
  /// sweeps, rule-premise scans, and the detector's pair scan fan out
  /// across this many threads.  0 = auto: the CAFA_ANALYSIS_THREADS
  /// environment variable if set, else hardware concurrency.  Purely a
  /// wall-clock knob -- every thread count produces bit-identical
  /// reports (docs/robustness.md, "Parallel analysis"), which is also
  /// why the checkpoint options digest excludes it.
  unsigned Threads = 0;
};

/// What the graceful-degradation ladder actually did while building one
/// HbIndex (see HbOptions::MemLimitBytes / DeadlineMillis).
struct HbDegradation {
  /// The oracle the caller asked for.
  ReachMode RequestedReach = ReachMode::Incremental;
  /// The oracle actually built (== RequestedReach unless downgraded).
  ReachMode UsedReach = ReachMode::Incremental;
  /// UsedReach was stepped down the ladder to fit MemLimitBytes.
  bool DowngradedForMemory = false;
  /// DeadlineMillis expired before the fixpoint converged; the relation
  /// under-approximates and reports derived from it are partial.
  bool DeadlineExceeded = false;
  /// Measured footprint of the oracle actually kept, in bytes.  The
  /// ladder steps rungs from budgeted builds that count real
  /// allocations (see makeReachability's BudgetBytes), so this is the
  /// number MemLimitBytes was actually compared against -- not the
  /// estimateReachabilityMemory() over-approximation.
  size_t MeasuredReachBytes = 0;
  /// Chains in the oracle's final decomposition (0 unless UsedReach is
  /// Chain).  Informational, for the scaling benches' chain statistics.
  size_t ChainCount = 0;
  /// Rule families a blown deadline left short of their fixpoint
  /// ("atomicity", "event-queue").  Empty when the fixpoint saturated.
  /// Downstream reporting uses this to say *which* orderings may be
  /// missing, and checkpoints carry it so a resumed run can label races
  /// that only existed because of the missing edges.
  std::vector<std::string> UnsaturatedRules;

  bool degraded() const { return DowngradedForMemory || DeadlineExceeded; }
};

/// Edge counts per rule, for tests and reporting.
struct HbRuleStats {
  uint64_t ProgramOrderEdges = 0;
  uint64_t ForkJoinEdges = 0;
  uint64_t NotifyWaitEdges = 0;
  uint64_t ListenerEdges = 0;
  uint64_t SendEdges = 0;
  uint64_t ExternalChainEdges = 0;
  uint64_t IpcEdges = 0;
  uint64_t AtomicityEdges = 0;
  uint64_t QueueRule1Edges = 0;
  uint64_t QueueRule2Edges = 0;
  uint64_t QueueRule3Edges = 0;
  uint64_t QueueRule4Edges = 0;
  uint64_t ConventionalOrderEdges = 0;
  uint32_t FixpointRounds = 0;
};

/// Scan-frontier position of one queue's gap-diagonal pair scan: every
/// pair lexicographically below (Gap, I) has been evaluated at least
/// once.  Gap >= the queue's element count means "fully scanned".
struct HbScanCursor {
  uint32_t Gap = 2;
  uint32_t I = 0;
};

/// Everything needed to freeze the derived-rule fixpoint at a round
/// boundary and restore it in another process.  Rounds are never cut
/// mid-scan (the deadline is checked before each round and the per-round
/// edge cap only moves the scan cursors), so a round boundary is always
/// a consistent frontier: the graph holds base + DerivedEdges, the
/// cursors say which pairs were already evaluated, and the closure rows
/// (when attached) mirror exactly those edges.
///
/// Resuming replays DerivedEdges onto a freshly built base graph,
/// restores the cursors, and continues the fixpoint.  The closure is the
/// unique least fixpoint of monotone rules and the scans are
/// deterministic, so the resumed run converges to the same relation --
/// and therefore the same reports -- as an uninterrupted one.
struct HbFrontier {
  /// Oracle in use when the frontier was taken.  Informational: closure
  /// rows are mode-independent, so a resume may import them into a
  /// different closure-based rung.
  ReachMode UsedReach = ReachMode::Incremental;
  /// Fixpoint rounds completed at the freeze point.
  uint32_t RoundsDone = 0;
  /// The fixpoint converged; a resume can skip rule evaluation entirely.
  bool Saturated = false;
  /// Rule-edge counters at the freeze point (base counters included).
  HbRuleStats Stats;
  /// Every derived edge inserted so far, in insertion order.
  std::vector<HbEdge> DerivedEdges;
  /// Per-queue scan frontiers for the atomicity / event-queue scans.
  std::vector<HbScanCursor> AtomCursors;
  std::vector<HbScanCursor> SendCursors;
  /// Serialized closure rows (row-major, RowWords words per row), or
  /// empty when the matrix was too large to attach -- the resume then
  /// recomputes it with refresh(), which is pure time, not lost work.
  size_t RowWords = 0;
  std::vector<uint64_t> ClosureRows;
  /// Serialized chain decomposition + clocks (ChainReachability's blob;
  /// empty unless the frontier was cut under ReachMode::Chain with live
  /// clocks).  Exactly one of ClosureRows/ChainState is ever nonempty.
  /// A resume under a different mode finds no importable blob and
  /// recomputes with refresh() -- the "recompute, never reject"
  /// cross-mode contract (docs/robustness.md).
  std::vector<uint64_t> ChainState;
  /// Rule families still short of their fixpoint (mirrors
  /// HbDegradation::UnsaturatedRules at the freeze point).
  std::vector<std::string> UnsaturatedRules;
};

/// Checkpoint hooks for HbIndex construction.  All fields optional:
/// Save, when set, is called with a consistent frontier at every cadence
/// tick (EveryMillis of wall time since the build started) and always
/// when the deadline rung cuts the fixpoint; Resume, when set, seeds
/// construction from a previously saved frontier instead of starting
/// the fixpoint from round zero.
struct HbCheckpointing {
  double EveryMillis = 0;
  std::function<void(const HbFrontier &)> Save;
  const HbFrontier *Resume = nullptr;
};

/// The built happens-before relation, queryable at record granularity.
class HbIndex {
public:
  HbIndex(const Trace &T, const TaskIndex &Index, const HbOptions &Options,
          const HbCheckpointing *Checkpoint = nullptr);
  ~HbIndex();

  HbIndex(const HbIndex &) = delete;
  HbIndex &operator=(const HbIndex &) = delete;
  HbIndex(HbIndex &&) = default;

  /// Returns true if record \p A happens before record \p B.
  bool happensBefore(uint32_t A, uint32_t B) const;

  /// Returns true if the records are ordered either way.
  bool ordered(uint32_t A, uint32_t B) const {
    return happensBefore(A, B) || happensBefore(B, A);
  }

  /// Event-level order: end(\p E1) happens before begin(\p E2).
  bool taskOrdered(TaskId E1, TaskId E2) const;

  const HbRuleStats &ruleStats() const { return Stats; }
  const HbGraph &graph() const { return *Graph; }

  /// What the degradation ladder did (oracle downgrade, blown deadline).
  const HbDegradation &degradation() const { return Degrade; }

  /// True when the derived-rule fixpoint ran to convergence (also true
  /// when no fixpoint was needed, e.g. the conventional model).  False
  /// exactly when the deadline rung cut it short.
  bool saturated() const { return Converged; }

  /// Freezes the current state as a resumable frontier (see HbFrontier).
  /// Closure rows are attached when the oracle has them and the blob
  /// stays under an internal size cap; otherwise the frontier carries
  /// only the edges and cursors and a resume recomputes the rows.
  HbFrontier exportFrontier() const;

  /// Swaps the reachability oracle for the BFS floor, releasing its
  /// precomputed state (closure rows or chain clocks).  For callers
  /// that are done with bulk ordering queries -- the windowed detector
  /// answers them from its own frontier rows -- but keep the index
  /// alive for the graph and occasional queries.  All oracles answer
  /// identically, so happensBefore() stays correct, just slower; export
  /// any frontier blob first, the shed oracle has none to attach.
  /// degradation() keeps reporting the build-time provenance.
  void shedOracle();

  /// Approximate analyzer memory (graph + oracle), for scaling benches.
  size_t memoryBytes() const;

  /// True when happensBefore()/ordered() may be issued from several
  /// threads at once: closure-backed oracles answer from an immutable
  /// row matrix, the chain oracle from an immutable clock matrix (once
  /// live).  False for the BFS floor and the chain oracle's search
  /// phase, which reuse per-query scratch -- callers (the parallel
  /// detector scan) must then stay sequential.
  bool concurrentQueriesSafe() const;

private:
  struct Builder;

  const Trace &T;
  const TaskIndex &Index;
  std::unique_ptr<HbGraph> Graph;
  /// Worker pool for the parallel analysis mode (HbOptions::Threads):
  /// shared by the oracle's column-strip sweeps and the rule engine's
  /// queue scans.  Holds Threads-1 helpers (the constructing thread
  /// participates); with 1 thread it is a no-op shell.
  std::unique_ptr<WorkerPool> Pool;
  std::unique_ptr<Reachability> Reach;
  HbRuleStats Stats;
  HbDegradation Degrade;
  /// Live frontier (everything but the closure rows, which are exported
  /// on demand): derived edges accumulate as rounds commit, cursors and
  /// counters are synced at every save point and at the end of
  /// construction.
  HbFrontier Kept;
  bool Converged = false;
};

} // namespace cafa

#endif // CAFA_HB_HBINDEX_H
