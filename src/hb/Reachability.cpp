//===- hb/Reachability.cpp - Reachability oracles over the HB DAG ----------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "hb/Reachability.h"

#include "support/Resolve.h"
#include "support/WorkerPool.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <optional>

using namespace cafa;

namespace {

//===----------------------------------------------------------------------===//
// Column-strip parallel sweeps
//===----------------------------------------------------------------------===//
//
// Both closure oracles run the same reverse-topological row sweep: node
// I absorbs {S} union row(S) for each successor S, and because ids
// ascend in trace order every absorbed row is already final.  The sweep
// parallelizes by *columns*, not rows: partition the word range
// [0, WordsPerRow) into contiguous strips and give each worker the
// complete descending row loop restricted to its strip.  Words of
// row(S) inside strip T are only ever written by worker T, and worker
// T finalizes them before reaching row I < S -- so no worker ever reads
// a word another worker may still write, and each strip independently
// maintains the closure invariant over its own columns.  The union of
// the strips is, word for word, the sequential sweep's output: the
// parallel path is bit-identical by construction, not by tolerance.

/// Number of column strips for a sweep: caller + helpers, clamped so
/// every strip holds at least two words, and 1 (sequential) for small
/// matrices where fork/join overhead would dominate.
unsigned stripCount(const WorkerPool *Pool, size_t NumNodes,
                    size_t WordsPerRow) {
  if (!Pool || Pool->helperThreads() == 0 || NumNodes < 128)
    return 1;
  size_t K = static_cast<size_t>(Pool->helperThreads()) + 1;
  if (K > WordsPerRow / 2)
    K = WordsPerRow / 2;
  return K < 2 ? 1u : static_cast<unsigned>(K);
}

/// Load-balanced strip boundaries (K+1 cuts, Cuts[0]=0,
/// Cuts[K]=WordsPerRow).  The union for an edge with head S touches
/// words [S>>6, WordsPerRow), so the load on word W is the number of
/// edge heads at or below it (plus a constant clear/scan floor); cuts
/// equalize the per-strip load sum.
std::vector<size_t> computeWordStrips(const HbGraph &G, size_t WordsPerRow,
                                      unsigned K) {
  std::vector<uint64_t> Heads(WordsPerRow, 0);
  for (size_t I = 0, N = G.numNodes(); I != N; ++I)
    for (uint32_t S : G.successors(NodeId(static_cast<uint32_t>(I))))
      ++Heads[S >> 6];
  std::vector<uint64_t> Load(WordsPerRow);
  uint64_t Acc = 0, Total = 0;
  for (size_t W = 0; W != WordsPerRow; ++W) {
    Acc += Heads[W];
    Load[W] = Acc + 1;
    Total += Load[W];
  }
  std::vector<size_t> Cuts;
  Cuts.reserve(K + 1);
  Cuts.push_back(0);
  uint64_t Cum = 0;
  for (size_t W = 0; W + 1 < WordsPerRow && Cuts.size() != K; ++W) {
    Cum += Load[W];
    size_t NextCut = Cuts.size(); // boundary index about to be placed
    size_t WordsLeft = WordsPerRow - (W + 1);
    size_t CutsLeft = K - NextCut;
    // Cut when this strip carries its share, or when every remaining
    // word is needed to give the remaining strips one word each.
    if (WordsLeft == CutsLeft ||
        static_cast<double>(Cum) * K >= static_cast<double>(Total) * NextCut)
      Cuts.push_back(W + 1);
  }
  Cuts.push_back(WordsPerRow);
  return Cuts;
}

/// One strip's share of a full closure rebuild: clear then re-derive
/// words [Lo, Hi) of every row, in descending row order.
void refreshRowsStrip(const HbGraph &G, std::vector<BitVec> &Rows, size_t Lo,
                      size_t Hi) {
  for (BitVec &Row : Rows)
    Row.clearWords(Lo, Hi);
  for (size_t I = G.numNodes(); I-- > 0;) {
    BitVec &Row = Rows[I];
    for (uint32_t S : G.successors(NodeId(static_cast<uint32_t>(I)))) {
      size_t SW = S >> 6;
      if (SW >= Hi)
        continue; // this edge only touches higher strips
      if (SW >= Lo)
        Row.set(S);
      Row.orWithRange(Rows[S], SW > Lo ? SW : Lo, Hi);
    }
  }
}

/// Full rebuild, parallel across column strips when the pool and matrix
/// size allow, else the classic sequential sweep.  Shared by both
/// closure oracles (identical output either way).
void refreshRows(const HbGraph &G, std::vector<BitVec> &Rows,
                 WorkerPool *Pool) {
  size_t N = G.numNodes();
  size_t WordsPerRow = N ? Rows.front().numWords() : 0;
  unsigned K = stripCount(Pool, N, WordsPerRow);
  if (K <= 1) {
    for (BitVec &Row : Rows)
      Row.clear();
    for (size_t I = N; I-- > 0;) {
      BitVec &Row = Rows[I];
      for (uint32_t S : G.successors(NodeId(static_cast<uint32_t>(I)))) {
        Row.set(S);
        Row.orWithFrom(Rows[S], S);
      }
    }
    return;
  }
  std::vector<size_t> Cuts = computeWordStrips(G, WordsPerRow, K);
  Pool->parallelFor(K, [&](size_t T) {
    refreshRowsStrip(G, Rows, Cuts[T], Cuts[T + 1]);
  });
}

/// Budget-tracked allocation of one N x N row matrix.  Counts each row
/// as it is committed and aborts past the budget (0 = unlimited),
/// releasing everything so a failed probe leaves no high-water mark
/// behind.  \p Used carries footprint already committed by the caller
/// (the incremental oracle's delta-tracking extras).
bool allocateRowMatrix(std::vector<BitVec> &Rows, size_t N, size_t Budget,
                       size_t Used) {
  Rows.resize(N);
  for (BitVec &Row : Rows) {
    Row.resize(N);
    if (Budget) {
      Used += Row.memoryBytes();
      if (Used > Budget) {
        Rows.clear();
        Rows.shrink_to_fit();
        return false;
      }
    }
  }
  return true;
}

/// Row export shared by both closure oracles (the matrix content depends
/// only on the graph, not the oracle flavor).
bool exportRows(const std::vector<BitVec> &Rows,
                std::vector<uint64_t> &WordsOut, size_t &WordsPerRowOut) {
  WordsPerRowOut = Rows.empty() ? 0 : Rows.front().numWords();
  WordsOut.clear();
  WordsOut.reserve(Rows.size() * WordsPerRowOut);
  for (const BitVec &Row : Rows)
    for (size_t W = 0, E = Row.numWords(); W != E; ++W)
      WordsOut.push_back(Row.word(W));
  return true;
}

/// Row import counterpart; the caller has already allocated Rows to the
/// graph's shape and verified the blob's dimensions match.
void importRows(std::vector<BitVec> &Rows, const uint64_t *Words,
                size_t WordsPerRow) {
  for (size_t I = 0, N = Rows.size(); I != N; ++I)
    for (size_t W = 0; W != WordsPerRow; ++W)
      Rows[I].setWord(W, Words[I * WordsPerRow + W]);
}

} // namespace

bool ClosureReachability::allocateRows() {
  size_t N = G.numNodes();
  if (Rows.size() == N && (N == 0 || Rows.back().size() == N))
    return !Exceeded;
  if (!allocateRowMatrix(Rows, N, Budget, /*Used=*/0)) {
    Exceeded = true;
    return false;
  }
  return true;
}

void ClosureReachability::refresh() {
  if (!allocateRows())
    return; // budget exceeded: the ladder discards this oracle
  // Node ids ascend in trace-record order and every edge points forward,
  // so descending node id is a reverse topological order: successors'
  // rows are final when a node is processed.  A row holds only bits
  // above its own node, so each union can start at the successor's word.
  // With a pool installed the sweep splits into column strips
  // (bit-identical; see the strip helpers above).
  refreshRows(G, Rows, Pool);
}

bool ClosureReachability::exportClosureRows(std::vector<uint64_t> &WordsOut,
                                            size_t &WordsPerRowOut) const {
  return exportRows(Rows, WordsOut, WordsPerRowOut);
}

bool ClosureReachability::importClosureRows(const uint64_t *Words,
                                            size_t NumWords,
                                            size_t WordsPerRow) {
  size_t N = G.numNodes();
  if (WordsPerRow != (N + 63) / 64 || NumWords != N * WordsPerRow)
    return false;
  if (!allocateRows())
    return false;
  importRows(Rows, Words, WordsPerRow);
  return true;
}

size_t ClosureReachability::memoryBytes() const {
  size_t Total = 0;
  for (const BitVec &Row : Rows)
    Total += Row.memoryBytes();
  return Total;
}

bool IncrementalClosureReachability::allocateRows() {
  size_t N = G.numNodes();
  if (Rows.size() == N && (N == 0 || Rows.back().size() == N))
    return !Exceeded;
  // The delta-tracking extras (dirty flags, snapshot row, fact-filter
  // masks) are committed up front and counted against the budget: a
  // fixpoint run will allocate them anyway, and counting them here keeps
  // the measured footprint strictly above the plain closure's so the
  // degradation ladder stays monotone.
  Dirty.assign(N, 0);
  SnapRow.resize(N);
  SrcMask.resize(N);
  TgtMask.resize(N);
  size_t Extras =
      Dirty.capacity() +
      SnapRow.memoryBytes() + SrcMask.memoryBytes() + TgtMask.memoryBytes();
  if (!allocateRowMatrix(Rows, N, Budget, Extras)) {
    Exceeded = true;
    return false;
  }
  return true;
}

void IncrementalClosureReachability::refresh() {
  if (!allocateRows())
    return; // budget exceeded: the ladder discards this oracle
  // Same reverse-topological sweep as the full closure (column-strip
  // parallel when a pool is installed).
  refreshRows(G, Rows, Pool);
  KnownEdges = G.numEdges();
  // A full rebuild loses track of which rows changed and which facts
  // appeared.
  DirtyValid = false;
  FactsValid = false;
}

bool IncrementalClosureReachability::exportClosureRows(
    std::vector<uint64_t> &WordsOut, size_t &WordsPerRowOut) const {
  return exportRows(Rows, WordsOut, WordsPerRowOut);
}

bool IncrementalClosureReachability::importClosureRows(const uint64_t *Words,
                                                       size_t NumWords,
                                                       size_t WordsPerRow) {
  size_t N = G.numNodes();
  if (WordsPerRow != (N + 63) / 64 || NumWords != N * WordsPerRow)
    return false;
  if (!allocateRows())
    return false;
  importRows(Rows, Words, WordsPerRow);
  // The imported matrix must cover the graph's current edges (the caller
  // restores graph and rows from the same checkpoint), and an import
  // carries no delta history.
  KnownEdges = G.numEdges();
  DirtyValid = false;
  FactsValid = false;
  return true;
}

void IncrementalClosureReachability::addEdges(
    std::span<const HbEdge> Edges) {
  // The protocol: the rule engine inserts exactly one round's edges into
  // the graph, then hands that batch here.  If the graph drifted (nodes
  // appeared, or edges were added behind our back), the delta cannot be
  // expressed -- rebuild.
  if (Rows.size() != G.numNodes() ||
      KnownEdges + Edges.size() != G.numEdges()) {
    refresh();
    return;
  }
  KnownEdges = G.numEdges();
  bool Collect = HasFilter && SrcMask.size() == G.numNodes() &&
                 TgtMask.size() == G.numNodes();
  Gained.clear();
  FactsValid = Collect; // an empty list is an exact "nothing changed"
  if (Edges.empty()) {
    Dirty.assign(G.numNodes(), 0);
    DirtyValid = true;
    return;
  }

  // Sort the batch by source id descending so one reverse-topological
  // sweep consumes it with a moving cursor.
  SortedBatch.assign(Edges.begin(), Edges.end());
  std::sort(SortedBatch.begin(), SortedBatch.end(),
            [](const HbEdge &A, const HbEdge &B) { return B.From < A.From; });

  // Nodes above the largest batch source cannot reach any new edge (all
  // paths to it would have to run backward), so the sweep starts there.
  uint32_t MaxFrom = SortedBatch.front().From.value();
  Dirty.assign(G.numNodes(), 0);
  if (Collect && SnapRow.size() != G.numNodes())
    SnapRow.resize(G.numNodes());

  size_t WordsPerRow = Rows.empty() ? 0 : Rows.front().numWords();
  unsigned K = stripCount(Pool, G.numNodes(), WordsPerRow);
  if (K > 1) {
    // Column-strip parallel delta sweep.  Each strip runs the complete
    // descending sweep over its own words with strip-local dirty flags:
    // a successor dirty only in *other* strips has unchanged words in
    // this strip, already contained by the closure invariant, so
    // skipping its re-absorb is a no-op -- every strip's words come out
    // exactly as the sequential sweep leaves them.  Dirty flags merge
    // by OR; gained words merge by the sequential emission order (rows
    // descending, words ascending -- the (From, WordIdx) keys are
    // unique across strips).
    std::vector<size_t> Cuts = computeWordStrips(G, WordsPerRow, K);
    Strips.resize(K);
    for (StripScratch &SS : Strips) {
      SS.Dirty.assign(G.numNodes(), 0);
      if (Collect && SS.Snap.size() != G.numNodes())
        SS.Snap.resize(G.numNodes());
      SS.Gained.clear();
    }
    Pool->parallelFor(K, [&](size_t T) {
      sweepStrip(Strips[T], Cuts[T], Cuts[T + 1], MaxFrom, Collect);
    });
    for (const StripScratch &SS : Strips) {
      for (size_t I = 0; I <= MaxFrom; ++I)
        Dirty[I] |= SS.Dirty[I];
      Gained.insert(Gained.end(), SS.Gained.begin(), SS.Gained.end());
    }
    std::sort(Gained.begin(), Gained.end(),
              [](const GainedWord &A, const GainedWord &B) {
                if (A.From != B.From)
                  return B.From < A.From;
                return A.WordIdx < B.WordIdx;
              });
    DirtyValid = true;
    return;
  }

  size_t Next = 0;
  for (uint32_t I = MaxFrom + 1; I-- > 0;) {
    BitVec &Row = Rows[I];
    bool HasBatch =
        Next != SortedBatch.size() && SortedBatch[Next].From.value() == I;
    // Snapshot the live half of a row that may change and whose gained
    // facts the filter wants, so the diff below enumerates exactly the
    // bits this sweep adds.  Rows only change through a batch edge or a
    // dirty successor, so everything else skips the copy.
    bool Snap = false;
    if (Collect && SrcMask.test(I)) {
      bool MayChange = HasBatch;
      if (!MayChange)
        for (uint32_t S : G.successors(NodeId(I)))
          if (Dirty[S]) {
            MayChange = true;
            break;
          }
      if (MayChange) {
        SnapRow.assignFrom(Row, I);
        Snap = true;
      }
    }
    bool Changed = false;
    // Absorb this node's batch edges: row gains {To} union row(To).
    // To > I, and the sweep already finalized every node above I, so
    // row(To) is final for this batch.
    for (; Next != SortedBatch.size() && SortedBatch[Next].From.value() == I;
         ++Next) {
      uint32_t To = SortedBatch[Next].To.value();
      assert(To > I && "HB edges must point forward in trace order");
      if (!Row.test(To)) {
        Row.set(To);
        Changed = true;
      }
      Changed |= Row.orWithFrom(Rows[To], To);
    }
    // Re-absorb every successor whose row grew earlier in this sweep;
    // clean successors are already contained by the closure invariant.
    for (uint32_t S : G.successors(NodeId(I)))
      if (Dirty[S])
        Changed |= Row.orWithFrom(Rows[S], S);
    Dirty[I] = Changed;
    if (Snap && Changed) {
      for (size_t W = I >> 6, E = Row.numWords(); W != E; ++W) {
        uint64_t D = (Row.word(W) ^ SnapRow.word(W)) & TgtMask.word(W);
        if (D)
          Gained.push_back({I, static_cast<uint32_t>(W), D});
      }
    }
  }
  DirtyValid = true;
}

void IncrementalClosureReachability::sweepStrip(StripScratch &SS, size_t Lo,
                                                size_t Hi, uint32_t MaxFrom,
                                                bool Collect) {
  size_t Next = 0;
  for (uint32_t I = MaxFrom + 1; I-- > 0;) {
    BitVec &Row = Rows[I];
    bool HasBatch =
        Next != SortedBatch.size() && SortedBatch[Next].From.value() == I;
    // Strip-local snapshot decision: this strip's words of row I can
    // only change through a batch edge from I (whose OR may reach into
    // this strip) or a successor dirty *in this strip*.
    bool Snap = false;
    size_t RowLo = static_cast<size_t>(I >> 6);
    size_t SnapLo = RowLo > Lo ? RowLo : Lo;
    if (Collect && SrcMask.test(I) && SnapLo < Hi) {
      bool MayChange = HasBatch;
      if (!MayChange)
        for (uint32_t S : G.successors(NodeId(I)))
          if (SS.Dirty[S]) {
            MayChange = true;
            break;
          }
      if (MayChange) {
        SS.Snap.assignRange(Row, SnapLo, Hi);
        Snap = true;
      }
    }
    bool Changed = false;
    for (; Next != SortedBatch.size() && SortedBatch[Next].From.value() == I;
         ++Next) {
      uint32_t To = SortedBatch[Next].To.value();
      assert(To > I && "HB edges must point forward in trace order");
      size_t TW = To >> 6;
      if (TW >= Hi)
        continue; // lands entirely in higher strips
      if (TW >= Lo && !Row.test(To)) {
        Row.set(To);
        Changed = true;
      }
      Changed |= Row.orWithRange(Rows[To], TW > Lo ? TW : Lo, Hi);
    }
    for (uint32_t S : G.successors(NodeId(I)))
      if (SS.Dirty[S]) {
        size_t SW = S >> 6;
        if (SW < Hi)
          Changed |= Row.orWithRange(Rows[S], SW > Lo ? SW : Lo, Hi);
      }
    SS.Dirty[I] = Changed;
    if (Snap && Changed) {
      for (size_t W = SnapLo; W != Hi; ++W) {
        uint64_t D = (Row.word(W) ^ SS.Snap.word(W)) & TgtMask.word(W);
        if (D)
          SS.Gained.push_back({I, static_cast<uint32_t>(W), D});
      }
    }
  }
}

size_t IncrementalClosureReachability::memoryBytes() const {
  size_t Total = 0;
  for (const BitVec &Row : Rows)
    Total += Row.memoryBytes();
  Total += Dirty.capacity() + SortedBatch.capacity() * sizeof(HbEdge);
  Total += SrcMask.memoryBytes() + TgtMask.memoryBytes() +
           SnapRow.memoryBytes() + Gained.capacity() * sizeof(GainedWord);
  for (const StripScratch &SS : Strips)
    Total += SS.Dirty.capacity() + SS.Snap.memoryBytes() +
             SS.Gained.capacity() * sizeof(GainedWord);
  return Total;
}

BfsReachability::BfsReachability(const HbGraph &G)
    : G(G), VisitedPos(G.trace().numTasks(), 0),
      VisitedVersion(G.trace().numTasks(), 0) {}

bool BfsReachability::reaches(NodeId From, NodeId To) const {
  if (From == To)
    return false;
  ++Version;

  TaskId ToTask = G.taskOfNode(To);
  uint32_t ToPos = G.posOfNode(To);
  bool Found = false;

  // Range worklist: (task, lo, hi) = nodes of `task` at positions
  // [lo, hi) whose successors still need expanding.  A task is expanded
  // at most once per position thanks to the VisitedPos high-water mark.
  struct Range {
    TaskId Task;
    uint32_t Lo, Hi;
  };
  std::vector<Range> Ranges;

  auto pushFrom = [&](NodeId Node) {
    TaskId Task = G.taskOfNode(Node);
    uint32_t Lo = G.posOfNode(Node);
    uint32_t Hi;
    if (VisitedVersion[Task.index()] == Version) {
      Hi = VisitedPos[Task.index()];
      if (Lo >= Hi)
        return; // already covered
    } else {
      Hi = static_cast<uint32_t>(G.taskNodes(Task).size());
      VisitedVersion[Task.index()] = Version;
    }
    VisitedPos[Task.index()] = Lo;
    if (Task == ToTask && ToPos >= Lo && ToPos < Hi)
      Found = true;
    Ranges.push_back({Task, Lo, Hi});
  };

  // Seed with the direct successors of From (program order within From's
  // task is one of them: the edge to the next node).
  for (uint32_t S : G.successors(From)) {
    pushFrom(NodeId(S));
    if (Found)
      return true;
  }

  while (!Ranges.empty()) {
    Range R = Ranges.back();
    Ranges.pop_back();
    const std::vector<NodeId> &Nodes = G.taskNodes(R.Task);
    for (uint32_t P = R.Lo; P != R.Hi; ++P) {
      for (uint32_t S : G.successors(Nodes[P])) {
        NodeId Succ(S);
        // Skip the intra-task program-order edge: it stays inside the
        // range we are already scanning.
        if (G.taskOfNode(Succ) == R.Task)
          continue;
        pushFrom(Succ);
        if (Found)
          return true;
      }
    }
  }
  return false;
}

size_t BfsReachability::memoryBytes() const {
  return VisitedPos.capacity() * 4 + VisitedVersion.capacity() * 4;
}

//===----------------------------------------------------------------------===//
// Chain cover
//===----------------------------------------------------------------------===//

void cafa::greedyChainCover(const HbGraph &G, ChainCover &Out) {
  size_t N = G.numNodes();
  Out.ChainOf.assign(N, ChainCover::Unassigned);
  Out.PosInChain.assign(N, 0);
  Out.ChainNodes.clear();
  // Greedy path cover: walk ids ascending, start a chain at every
  // unassigned node, extend along the smallest-id unassigned successor.
  // Edges point forward in id order, so every chain's members ascend --
  // which makes a chain's position order its id order, and makes the
  // walk O(N + E) total.  The cover is a pure function of the adjacency
  // lists: determinism is what keeps checkpointed clocks byte-stable
  // and lets the windowed frontier recompute the very same cover.
  for (uint32_t I = 0, E = static_cast<uint32_t>(N); I != E; ++I) {
    if (Out.ChainOf[I] != ChainCover::Unassigned)
      continue;
    uint32_t C = static_cast<uint32_t>(Out.ChainNodes.size());
    Out.ChainNodes.emplace_back();
    uint32_t U = I;
    for (;;) {
      Out.ChainOf[U] = C;
      Out.PosInChain[U] = static_cast<uint32_t>(Out.ChainNodes[C].size());
      Out.ChainNodes[C].push_back(U);
      uint32_t NextU = ChainCover::Unassigned;
      for (uint32_t S : G.successors(NodeId(U)))
        if (Out.ChainOf[S] == ChainCover::Unassigned && S < NextU)
          NextU = S;
      if (NextU == ChainCover::Unassigned)
        break;
      U = NextU;
    }
  }
}

//===----------------------------------------------------------------------===//
// ChainReachability
//===----------------------------------------------------------------------===//

ChainReachability::ChainReachability(const HbGraph &G, size_t BudgetBytes,
                                     bool Defer)
    : G(G), Budget(BudgetBytes), Search(G) {
  if (!Defer)
    refresh();
}

void ChainReachability::decompose() {
  ChainCover Cover;
  Cover.ChainOf = std::move(ChainOf);
  Cover.PosInChain = std::move(PosInChain);
  Cover.ChainNodes = std::move(ChainNodes);
  greedyChainCover(G, Cover);
  ChainOf = std::move(Cover.ChainOf);
  PosInChain = std::move(Cover.PosInChain);
  ChainNodes = std::move(Cover.ChainNodes);
  NumChains = static_cast<uint32_t>(ChainNodes.size());
}

void ChainReachability::maybeBootstrap() {
  // The bootstrap is a speed device, never a memory commitment the
  // caller did not sign off on: engage it only when the embedded
  // closure's (deliberately pessimistic) estimate fits both the
  // structural cap and whatever byte budget the ladder probe imposed.
  size_t Allowance =
      Budget && Budget < MaxBootstrapBytes ? Budget : MaxBootstrapBytes;
  if (estimateReachabilityMemory(G.numNodes(), ReachMode::Incremental) >
      Allowance) {
    Boot.reset();
    return;
  }
  if (!Boot) {
    Boot = std::make_unique<IncrementalClosureReachability>(G);
    Boot->setWorkerPool(Pool);
    if (HasFilter)
      Boot->setFactFilter(SrcMask, TgtMask);
  } else {
    Boot->refresh();
  }
}

size_t ChainReachability::baseBytes() const {
  size_t Total = ChainOf.capacity() * 4 + PosInChain.capacity() * 4 +
                 Dirty.capacity() + SortedBatch.capacity() * sizeof(HbEdge) +
                 SrcMask.memoryBytes() + TgtMask.memoryBytes() +
                 OldClock.capacity() * 4 + NewTargets.capacity() * 4 +
                 ChainNodes.capacity() * sizeof(std::vector<uint32_t>) +
                 Search.memoryBytes();
  for (const std::vector<uint32_t> &CN : ChainNodes)
    Total += CN.capacity() * 4;
  return Total;
}

bool ChainReachability::buildClocks() {
  ClocksValid = false;
  Clocks.clear();
  Clocks.shrink_to_fit();
  // Two gates keep the matrix near-linear: the structural cap (a wide
  // cover means the fixpoint has not yet serialized the queues -- clocks
  // now would be quadratic-shaped), and the byte budget (the ladder's
  // measured probe).  Failing either is not an error: the search phase
  // answers every query correctly in O(N), and a later round re-tries.
  if (NumChains > MaxChainsForClocks)
    return false;
  size_t N = G.numNodes();
  size_t C = NumChains;
  if (Budget && baseBytes() + N * C * 4 > Budget)
    return false;
  Clocks.assign(N * C, Unset);
  // Same reverse-topological sweep as the closure rebuild, over clock
  // rows instead of bitset rows: node I absorbs, per chain, the minimum
  // of {S's own position} and S's clock row, for each successor S.
  for (size_t I = N; I-- > 0;) {
    uint32_t *Row = Clocks.data() + I * C;
    for (uint32_t S : G.successors(NodeId(static_cast<uint32_t>(I)))) {
      uint32_t P = PosInChain[S];
      if (P < Row[ChainOf[S]])
        Row[ChainOf[S]] = P;
      const uint32_t *SRow = Clocks.data() + size_t(S) * C;
      for (size_t K = 0; K != C; ++K)
        if (SRow[K] < Row[K])
          Row[K] = SRow[K];
    }
  }
  ClocksValid = true;
  return true;
}

void ChainReachability::refresh() {
  if (Exceeded)
    return; // the ladder discards this oracle
  size_t N = G.numNodes();
  decompose();
  Dirty.assign(N, 0);
  if (Budget && baseBytes() > Budget) {
    // Not even the linear structures fit: unusable, step the ladder.
    // Release everything so the failed probe leaves no high-water mark.
    Exceeded = true;
    ChainOf.clear();
    ChainOf.shrink_to_fit();
    PosInChain.clear();
    PosInChain.shrink_to_fit();
    ChainNodes.clear();
    ChainNodes.shrink_to_fit();
    Dirty.clear();
    Dirty.shrink_to_fit();
    Clocks.clear();
    Clocks.shrink_to_fit();
    NumChains = 0;
    ClocksValid = false;
    Boot.reset();
    return;
  }
  KnownEdges = G.numEdges();
  if (buildClocks())
    Boot.reset(); // clocks beat rows: exact deltas at linear memory
  else
    maybeBootstrap();
  // A full rebuild loses track of which rows changed and which facts
  // appeared (same contract as the incremental closure's refresh()).
  DirtyValid = false;
  FactsValid = false;
}

bool ChainReachability::reaches(NodeId From, NodeId To) const {
  if (!ClocksValid)
    return Boot ? Boot->reaches(From, To) : Search.reaches(From, To);
  // Prefix property: From reaches chain c's member at position p iff its
  // frontier clock for c is <= p.  A node never reaches itself: every
  // reachable node has a larger id, and chain members ascend in id, so
  // Row[chain(From)] > pos(From) always.
  return Clocks[From.index() * size_t(NumChains) + ChainOf[To.index()]] <=
         PosInChain[To.index()];
}

void ChainReachability::addEdges(std::span<const HbEdge> Edges) {
  // Same drift protocol as the incremental closure: the graph must hold
  // exactly the edges we know about plus this batch, else rebuild.
  if (ChainOf.size() != G.numNodes() ||
      KnownEdges + Edges.size() != G.numEdges()) {
    refresh();
    return;
  }
  KnownEdges = G.numEdges();
  bool Collect = ClocksValid && HasFilter &&
                 SrcMask.size() == G.numNodes() &&
                 TgtMask.size() == G.numNodes();
  Gained.clear();
  FactsValid = Collect; // an empty list is an exact "nothing changed"
  if (Edges.empty()) {
    Dirty.assign(G.numNodes(), 0);
    DirtyValid = true;
    return;
  }

  if (!ClocksValid) {
    // Search phase.  In the bootstrap tier the embedded closure absorbs
    // the batch (queries, rows, and exact delta reports keep flowing
    // through it); in the frugal tier queries read live edges and the
    // batch needs no propagation.  Either way this round's real work is
    // re-deriving the cover and checking whether it collapsed enough to
    // commit the clocks.
    if (Boot)
      Boot->addEdges(Edges);
    decompose();
    if (buildClocks() && Boot) {
      // Switch round, bootstrapped: adopt the closure's exact delta
      // report as our own, then release the rows -- the engine sees an
      // uninterrupted exact-delta stream across the representation
      // change.
      if (const uint8_t *BD = Boot->changedRows()) {
        Dirty.assign(BD, BD + G.numNodes());
        DirtyValid = true;
      } else {
        DirtyValid = false;
      }
      if (const std::vector<GainedWord> *BG = Boot->gainedWords()) {
        Gained = *BG;
        FactsValid = true;
      } else {
        FactsValid = false;
      }
      Boot.reset();
      return;
    }
    // Frugal-tier rounds (and a frugal switch round) report no deltas;
    // the engine treats nullptr as a conservative full re-scan, the
    // same contract refresh() has.  Bootstrapped non-switch rounds
    // forward the closure's reports instead (see changedRows()).
    DirtyValid = false;
    FactsValid = false;
    return;
  }

  // Exact incremental clock update: the same descending dirty-row sweep
  // as IncrementalClosureReachability::addEdges, with "row grew" now
  // meaning "some chain clock decreased".  The two conditions are
  // equivalent (a clock entry decreasing is exactly new nodes becoming
  // reachable), so the Dirty flags -- and, below, the gained-fact
  // stream -- come out element-wise identical to the closure oracle's.
  SortedBatch.assign(Edges.begin(), Edges.end());
  std::sort(SortedBatch.begin(), SortedBatch.end(),
            [](const HbEdge &A, const HbEdge &B) { return B.From < A.From; });
  uint32_t MaxFrom = SortedBatch.front().From.value();
  Dirty.assign(G.numNodes(), 0);
  size_t C = NumChains;
  OldClock.resize(C);

  size_t Next = 0;
  for (uint32_t I = MaxFrom + 1; I-- > 0;) {
    uint32_t *Row = Clocks.data() + size_t(I) * C;
    bool HasBatch =
        Next != SortedBatch.size() && SortedBatch[Next].From.value() == I;
    // Snapshot the clock row of a node that may change and whose gained
    // facts the filter wants (rows only change through a batch edge or a
    // dirty successor; everything else skips the copy).
    bool Snap = false;
    if (Collect && SrcMask.test(I)) {
      bool MayChange = HasBatch;
      if (!MayChange)
        for (uint32_t S : G.successors(NodeId(I)))
          if (Dirty[S]) {
            MayChange = true;
            break;
          }
      if (MayChange) {
        std::copy(Row, Row + C, OldClock.begin());
        Snap = true;
      }
    }
    bool Changed = false;
    // Absorb this node's batch edges: the row gains {To} (To's own
    // position in its chain) union To's clock row, both final -- the
    // sweep already finalized every node above I.
    for (; Next != SortedBatch.size() && SortedBatch[Next].From.value() == I;
         ++Next) {
      uint32_t To = SortedBatch[Next].To.value();
      assert(To > I && "HB edges must point forward in trace order");
      uint32_t P = PosInChain[To];
      if (P < Row[ChainOf[To]]) {
        Row[ChainOf[To]] = P;
        Changed = true;
      }
      const uint32_t *TRow = Clocks.data() + size_t(To) * C;
      for (size_t K = 0; K != C; ++K)
        if (TRow[K] < Row[K]) {
          Row[K] = TRow[K];
          Changed = true;
        }
    }
    // Re-absorb every successor whose row grew earlier in this sweep;
    // clean successors are already contained by the clock invariant.
    for (uint32_t S : G.successors(NodeId(I)))
      if (Dirty[S]) {
        const uint32_t *SRow = Clocks.data() + size_t(S) * C;
        for (size_t K = 0; K != C; ++K)
          if (SRow[K] < Row[K]) {
            Row[K] = SRow[K];
            Changed = true;
          }
      }
    Dirty[I] = Changed;
    if (Snap && Changed) {
      // Every decreased clock names exactly the newly reachable nodes:
      // chain K's positions [new, old).  Collect, filter by the target
      // mask, sort ascending (each node lives in one chain, so there
      // are no duplicates), and word-pack -- the emission order (rows
      // descending from the outer loop, words ascending here) is the
      // closure oracle's snapshot-XOR order, element for element.
      NewTargets.clear();
      for (size_t K = 0; K != C; ++K) {
        if (Row[K] >= OldClock[K])
          continue;
        const std::vector<uint32_t> &CN = ChainNodes[K];
        uint32_t Hi = OldClock[K] == Unset
                          ? static_cast<uint32_t>(CN.size())
                          : OldClock[K];
        for (uint32_t P = Row[K]; P != Hi; ++P)
          if (TgtMask.test(CN[P]))
            NewTargets.push_back(CN[P]);
      }
      if (!NewTargets.empty()) {
        std::sort(NewTargets.begin(), NewTargets.end());
        for (size_t J = 0; J != NewTargets.size();) {
          uint32_t W = NewTargets[J] >> 6;
          uint64_t Bits = 0;
          for (; J != NewTargets.size() && (NewTargets[J] >> 6) == W; ++J)
            Bits |= uint64_t(1) << (NewTargets[J] & 63);
          Gained.push_back({I, W, Bits});
        }
      }
    }
  }
  DirtyValid = true;
}

bool ChainReachability::exportChainState(
    std::vector<uint64_t> &WordsOut) const {
  if (!ClocksValid)
    return false; // search phase: nothing worth carrying, resume refreshes
  size_t N = G.numNodes();
  auto pack = [&WordsOut](const std::vector<uint32_t> &V) {
    for (size_t I = 0; I < V.size(); I += 2) {
      uint64_t W = V[I];
      if (I + 1 < V.size())
        W |= uint64_t(V[I + 1]) << 32;
      WordsOut.push_back(W);
    }
  };
  WordsOut.clear();
  WordsOut.reserve(3 + (N + 1) / 2 + (Clocks.size() + 1) / 2);
  WordsOut.push_back(N);
  WordsOut.push_back(NumChains);
  WordsOut.push_back(1); // layout flag: chain-of array + clock matrix
  pack(ChainOf);
  pack(Clocks);
  return true;
}

bool ChainReachability::importChainState(const uint64_t *Words,
                                         size_t NumWords) {
  size_t N = G.numNodes();
  if (NumWords < 3 || Words[0] != N || Words[2] != 1)
    return false;
  uint64_t C64 = Words[1];
  if (N == 0 ? C64 != 0 : (C64 == 0 || C64 > N || C64 > MaxChainsForClocks))
    return false;
  uint32_t C = static_cast<uint32_t>(C64);
  size_t CoWords = (N + 1) / 2;
  size_t ClWords = (N * size_t(C) + 1) / 2;
  if (NumWords != 3 + CoWords + ClWords)
    return false;
  if (Budget && N * (13 + size_t(C) * 4) > Budget)
    return false; // does not fit; the caller's refresh() runs search-phase
  auto unpack = [](const uint64_t *Src, std::vector<uint32_t> &V, size_t Len) {
    V.resize(Len);
    for (size_t I = 0; I != Len; ++I) {
      uint64_t W = Src[I / 2];
      V[I] = static_cast<uint32_t>(I % 2 ? W >> 32 : W & 0xFFFFFFFFu);
    }
  };
  std::vector<uint32_t> CandChainOf;
  unpack(Words + 3, CandChainOf, N);
  for (uint32_t V : CandChainOf)
    if (V >= C)
      return false;
  // Rebuild members/positions from the chain assignment (ids ascending
  // restores the positional order the exporting run used), then bounds-
  // check every clock entry against its chain's length.
  std::vector<std::vector<uint32_t>> CandNodes(C);
  std::vector<uint32_t> CandPos(N);
  for (uint32_t I = 0; I != N; ++I) {
    CandPos[I] = static_cast<uint32_t>(CandNodes[CandChainOf[I]].size());
    CandNodes[CandChainOf[I]].push_back(I);
  }
  std::vector<uint32_t> CandClocks;
  unpack(Words + 3 + CoWords, CandClocks, N * size_t(C));
  for (size_t I = 0; I != CandClocks.size(); ++I)
    if (CandClocks[I] != Unset &&
        CandClocks[I] >= CandNodes[I % C].size())
      return false;
  ChainOf = std::move(CandChainOf);
  PosInChain = std::move(CandPos);
  ChainNodes = std::move(CandNodes);
  Clocks = std::move(CandClocks);
  NumChains = C;
  ClocksValid = true;
  Boot.reset();
  Dirty.assign(N, 0);
  // The imported clocks must cover the graph's current edges (the caller
  // restores graph and clocks from the same checkpoint), and an import
  // carries no delta history.
  KnownEdges = G.numEdges();
  DirtyValid = false;
  FactsValid = false;
  return true;
}

size_t ChainReachability::memoryBytes() const {
  return baseBytes() + Clocks.capacity() * 4 +
         Gained.capacity() * sizeof(GainedWord) +
         (Boot ? Boot->memoryBytes() : 0);
}

ReachMode cafa::resolveReachMode(ReachMode Requested) {
  // Request > environment > default via the shared precedence template
  // (0 = auto for the thread knobs, Auto here).
  return resolveRequestEnv<ReachMode>(
      Requested, ReachMode::Auto, "CAFA_REACH",
      [](const char *Env) -> std::optional<ReachMode> {
        if (std::strcmp(Env, "incremental") == 0)
          return ReachMode::Incremental;
        if (std::strcmp(Env, "closure") == 0)
          return ReachMode::Closure;
        if (std::strcmp(Env, "chain") == 0)
          return ReachMode::Chain;
        if (std::strcmp(Env, "bfs") == 0)
          return ReachMode::Bfs;
        return std::nullopt;
      },
      [] { return ReachMode::Incremental; });
}

std::unique_ptr<Reachability> cafa::makeReachability(const HbGraph &G,
                                                     ReachMode Mode,
                                                     size_t BudgetBytes,
                                                     bool Defer) {
  switch (resolveReachMode(Mode)) {
  case ReachMode::Closure:
    return std::make_unique<ClosureReachability>(G, BudgetBytes, Defer);
  case ReachMode::Bfs:
    // No precomputed state: nothing to budget, nothing to defer.
    return std::make_unique<BfsReachability>(G);
  case ReachMode::Chain:
    return std::make_unique<ChainReachability>(G, BudgetBytes, Defer);
  case ReachMode::Incremental:
  case ReachMode::Auto: // resolveReachMode never returns Auto
    break;
  }
  return std::make_unique<IncrementalClosureReachability>(G, BudgetBytes,
                                                          Defer);
}

const char *cafa::reachModeName(ReachMode Mode) {
  switch (Mode) {
  case ReachMode::Closure:
    return "closure";
  case ReachMode::Bfs:
    return "bfs";
  case ReachMode::Incremental:
    return "incremental";
  case ReachMode::Chain:
    return "chain";
  case ReachMode::Auto:
    return "auto";
  }
  return "unknown";
}

size_t cafa::estimateReachabilityMemory(size_t NumNodes, ReachMode Mode) {
  // One closure row is N bits, rounded up to whole 64-bit words.
  size_t RowBytes = ((NumNodes + 63) / 64) * 8;
  switch (resolveReachMode(Mode)) {
  case ReachMode::Closure:
    return NumNodes * RowBytes;
  case ReachMode::Incremental:
  case ReachMode::Auto: // resolveReachMode never returns Auto
    // Rows, plus the per-node dirty flags, plus the snapshot row and the
    // two fact-filter masks.  Strictly above the Closure estimate, which
    // keeps the degradation ladder monotone.
    return NumNodes * RowBytes + NumNodes + 3 * RowBytes;
  case ReachMode::Chain: {
    // Linear structures (chain ids, positions, members, dirty flags,
    // search scratch, container overhead) at ~48 bytes/node, plus the
    // clock matrix at the largest shape buildClocks() will ever commit:
    // 4 bytes per (node, chain) with chains capped structurally.  Errs
    // high -- the measured cover is usually far narrower than the cap.
    size_t Cap = NumNodes < ChainReachability::MaxChainsForClocks
                     ? NumNodes
                     : size_t(ChainReachability::MaxChainsForClocks);
    return NumNodes * 48 + NumNodes * 4 * Cap;
  }
  case ReachMode::Bfs:
    // Per-task visited-position/version scratch plus the worklist; tasks
    // never outnumber nodes, so per-node is a safe upper bound.
    return NumNodes * 12;
  }
  return NumNodes * RowBytes;
}
