//===- hb/Reachability.cpp - Reachability oracles over the HB DAG ----------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "hb/Reachability.h"

#include <algorithm>
#include <cassert>

using namespace cafa;

namespace {

/// Budget-tracked allocation of one N x N row matrix.  Counts each row
/// as it is committed and aborts past the budget (0 = unlimited),
/// releasing everything so a failed probe leaves no high-water mark
/// behind.  \p Used carries footprint already committed by the caller
/// (the incremental oracle's delta-tracking extras).
bool allocateRowMatrix(std::vector<BitVec> &Rows, size_t N, size_t Budget,
                       size_t Used) {
  Rows.resize(N);
  for (BitVec &Row : Rows) {
    Row.resize(N);
    if (Budget) {
      Used += Row.memoryBytes();
      if (Used > Budget) {
        Rows.clear();
        Rows.shrink_to_fit();
        return false;
      }
    }
  }
  return true;
}

/// Row export shared by both closure oracles (the matrix content depends
/// only on the graph, not the oracle flavor).
bool exportRows(const std::vector<BitVec> &Rows,
                std::vector<uint64_t> &WordsOut, size_t &WordsPerRowOut) {
  WordsPerRowOut = Rows.empty() ? 0 : Rows.front().numWords();
  WordsOut.clear();
  WordsOut.reserve(Rows.size() * WordsPerRowOut);
  for (const BitVec &Row : Rows)
    for (size_t W = 0, E = Row.numWords(); W != E; ++W)
      WordsOut.push_back(Row.word(W));
  return true;
}

/// Row import counterpart; the caller has already allocated Rows to the
/// graph's shape and verified the blob's dimensions match.
void importRows(std::vector<BitVec> &Rows, const uint64_t *Words,
                size_t WordsPerRow) {
  for (size_t I = 0, N = Rows.size(); I != N; ++I)
    for (size_t W = 0; W != WordsPerRow; ++W)
      Rows[I].setWord(W, Words[I * WordsPerRow + W]);
}

} // namespace

bool ClosureReachability::allocateRows() {
  size_t N = G.numNodes();
  if (Rows.size() == N && (N == 0 || Rows.back().size() == N))
    return !Exceeded;
  if (!allocateRowMatrix(Rows, N, Budget, /*Used=*/0)) {
    Exceeded = true;
    return false;
  }
  return true;
}

void ClosureReachability::refresh() {
  if (!allocateRows())
    return; // budget exceeded: the ladder discards this oracle
  size_t N = G.numNodes();
  for (BitVec &Row : Rows)
    Row.clear();
  // Node ids ascend in trace-record order and every edge points forward,
  // so descending node id is a reverse topological order: successors'
  // rows are final when a node is processed.  A row holds only bits
  // above its own node, so each union can start at the successor's word.
  for (size_t I = N; I-- > 0;) {
    BitVec &Row = Rows[I];
    for (uint32_t S : G.successors(NodeId(static_cast<uint32_t>(I)))) {
      Row.set(S);
      Row.orWithFrom(Rows[S], S);
    }
  }
}

bool ClosureReachability::exportClosureRows(std::vector<uint64_t> &WordsOut,
                                            size_t &WordsPerRowOut) const {
  return exportRows(Rows, WordsOut, WordsPerRowOut);
}

bool ClosureReachability::importClosureRows(const uint64_t *Words,
                                            size_t NumWords,
                                            size_t WordsPerRow) {
  size_t N = G.numNodes();
  if (WordsPerRow != (N + 63) / 64 || NumWords != N * WordsPerRow)
    return false;
  if (!allocateRows())
    return false;
  importRows(Rows, Words, WordsPerRow);
  return true;
}

size_t ClosureReachability::memoryBytes() const {
  size_t Total = 0;
  for (const BitVec &Row : Rows)
    Total += Row.memoryBytes();
  return Total;
}

bool IncrementalClosureReachability::allocateRows() {
  size_t N = G.numNodes();
  if (Rows.size() == N && (N == 0 || Rows.back().size() == N))
    return !Exceeded;
  // The delta-tracking extras (dirty flags, snapshot row, fact-filter
  // masks) are committed up front and counted against the budget: a
  // fixpoint run will allocate them anyway, and counting them here keeps
  // the measured footprint strictly above the plain closure's so the
  // degradation ladder stays monotone.
  Dirty.assign(N, 0);
  SnapRow.resize(N);
  SrcMask.resize(N);
  TgtMask.resize(N);
  size_t Extras =
      Dirty.capacity() +
      SnapRow.memoryBytes() + SrcMask.memoryBytes() + TgtMask.memoryBytes();
  if (!allocateRowMatrix(Rows, N, Budget, Extras)) {
    Exceeded = true;
    return false;
  }
  return true;
}

void IncrementalClosureReachability::refresh() {
  if (!allocateRows())
    return; // budget exceeded: the ladder discards this oracle
  size_t N = G.numNodes();
  for (BitVec &Row : Rows)
    Row.clear();
  // Same reverse-topological sweep as the full closure; rows hold only
  // bits above their own node id, so each union can start at the
  // successor's word.
  for (size_t I = N; I-- > 0;) {
    BitVec &Row = Rows[I];
    for (uint32_t S : G.successors(NodeId(static_cast<uint32_t>(I)))) {
      Row.set(S);
      Row.orWithFrom(Rows[S], S);
    }
  }
  KnownEdges = G.numEdges();
  // A full rebuild loses track of which rows changed and which facts
  // appeared.
  DirtyValid = false;
  FactsValid = false;
}

bool IncrementalClosureReachability::exportClosureRows(
    std::vector<uint64_t> &WordsOut, size_t &WordsPerRowOut) const {
  return exportRows(Rows, WordsOut, WordsPerRowOut);
}

bool IncrementalClosureReachability::importClosureRows(const uint64_t *Words,
                                                       size_t NumWords,
                                                       size_t WordsPerRow) {
  size_t N = G.numNodes();
  if (WordsPerRow != (N + 63) / 64 || NumWords != N * WordsPerRow)
    return false;
  if (!allocateRows())
    return false;
  importRows(Rows, Words, WordsPerRow);
  // The imported matrix must cover the graph's current edges (the caller
  // restores graph and rows from the same checkpoint), and an import
  // carries no delta history.
  KnownEdges = G.numEdges();
  DirtyValid = false;
  FactsValid = false;
  return true;
}

void IncrementalClosureReachability::addEdges(
    std::span<const HbEdge> Edges) {
  // The protocol: the rule engine inserts exactly one round's edges into
  // the graph, then hands that batch here.  If the graph drifted (nodes
  // appeared, or edges were added behind our back), the delta cannot be
  // expressed -- rebuild.
  if (Rows.size() != G.numNodes() ||
      KnownEdges + Edges.size() != G.numEdges()) {
    refresh();
    return;
  }
  KnownEdges = G.numEdges();
  bool Collect = HasFilter && SrcMask.size() == G.numNodes() &&
                 TgtMask.size() == G.numNodes();
  Gained.clear();
  FactsValid = Collect; // an empty list is an exact "nothing changed"
  if (Edges.empty()) {
    Dirty.assign(G.numNodes(), 0);
    DirtyValid = true;
    return;
  }

  // Sort the batch by source id descending so one reverse-topological
  // sweep consumes it with a moving cursor.
  SortedBatch.assign(Edges.begin(), Edges.end());
  std::sort(SortedBatch.begin(), SortedBatch.end(),
            [](const HbEdge &A, const HbEdge &B) { return B.From < A.From; });

  // Nodes above the largest batch source cannot reach any new edge (all
  // paths to it would have to run backward), so the sweep starts there.
  uint32_t MaxFrom = SortedBatch.front().From.value();
  Dirty.assign(G.numNodes(), 0);
  if (Collect && SnapRow.size() != G.numNodes())
    SnapRow.resize(G.numNodes());

  size_t Next = 0;
  for (uint32_t I = MaxFrom + 1; I-- > 0;) {
    BitVec &Row = Rows[I];
    bool HasBatch =
        Next != SortedBatch.size() && SortedBatch[Next].From.value() == I;
    // Snapshot the live half of a row that may change and whose gained
    // facts the filter wants, so the diff below enumerates exactly the
    // bits this sweep adds.  Rows only change through a batch edge or a
    // dirty successor, so everything else skips the copy.
    bool Snap = false;
    if (Collect && SrcMask.test(I)) {
      bool MayChange = HasBatch;
      if (!MayChange)
        for (uint32_t S : G.successors(NodeId(I)))
          if (Dirty[S]) {
            MayChange = true;
            break;
          }
      if (MayChange) {
        SnapRow.assignFrom(Row, I);
        Snap = true;
      }
    }
    bool Changed = false;
    // Absorb this node's batch edges: row gains {To} union row(To).
    // To > I, and the sweep already finalized every node above I, so
    // row(To) is final for this batch.
    for (; Next != SortedBatch.size() && SortedBatch[Next].From.value() == I;
         ++Next) {
      uint32_t To = SortedBatch[Next].To.value();
      assert(To > I && "HB edges must point forward in trace order");
      if (!Row.test(To)) {
        Row.set(To);
        Changed = true;
      }
      Changed |= Row.orWithFrom(Rows[To], To);
    }
    // Re-absorb every successor whose row grew earlier in this sweep;
    // clean successors are already contained by the closure invariant.
    for (uint32_t S : G.successors(NodeId(I)))
      if (Dirty[S])
        Changed |= Row.orWithFrom(Rows[S], S);
    Dirty[I] = Changed;
    if (Snap && Changed) {
      for (size_t W = I >> 6, E = Row.numWords(); W != E; ++W) {
        uint64_t D = (Row.word(W) ^ SnapRow.word(W)) & TgtMask.word(W);
        if (D)
          Gained.push_back({I, static_cast<uint32_t>(W), D});
      }
    }
  }
  DirtyValid = true;
}

size_t IncrementalClosureReachability::memoryBytes() const {
  size_t Total = 0;
  for (const BitVec &Row : Rows)
    Total += Row.memoryBytes();
  Total += Dirty.capacity() + SortedBatch.capacity() * sizeof(HbEdge);
  Total += SrcMask.memoryBytes() + TgtMask.memoryBytes() +
           SnapRow.memoryBytes() + Gained.capacity() * sizeof(GainedWord);
  return Total;
}

BfsReachability::BfsReachability(const HbGraph &G)
    : G(G), VisitedPos(G.trace().numTasks(), 0),
      VisitedVersion(G.trace().numTasks(), 0) {}

bool BfsReachability::reaches(NodeId From, NodeId To) const {
  if (From == To)
    return false;
  ++Version;

  TaskId ToTask = G.taskOfNode(To);
  uint32_t ToPos = G.posOfNode(To);
  bool Found = false;

  // Range worklist: (task, lo, hi) = nodes of `task` at positions
  // [lo, hi) whose successors still need expanding.  A task is expanded
  // at most once per position thanks to the VisitedPos high-water mark.
  struct Range {
    TaskId Task;
    uint32_t Lo, Hi;
  };
  std::vector<Range> Ranges;

  auto pushFrom = [&](NodeId Node) {
    TaskId Task = G.taskOfNode(Node);
    uint32_t Lo = G.posOfNode(Node);
    uint32_t Hi;
    if (VisitedVersion[Task.index()] == Version) {
      Hi = VisitedPos[Task.index()];
      if (Lo >= Hi)
        return; // already covered
    } else {
      Hi = static_cast<uint32_t>(G.taskNodes(Task).size());
      VisitedVersion[Task.index()] = Version;
    }
    VisitedPos[Task.index()] = Lo;
    if (Task == ToTask && ToPos >= Lo && ToPos < Hi)
      Found = true;
    Ranges.push_back({Task, Lo, Hi});
  };

  // Seed with the direct successors of From (program order within From's
  // task is one of them: the edge to the next node).
  for (uint32_t S : G.successors(From)) {
    pushFrom(NodeId(S));
    if (Found)
      return true;
  }

  while (!Ranges.empty()) {
    Range R = Ranges.back();
    Ranges.pop_back();
    const std::vector<NodeId> &Nodes = G.taskNodes(R.Task);
    for (uint32_t P = R.Lo; P != R.Hi; ++P) {
      for (uint32_t S : G.successors(Nodes[P])) {
        NodeId Succ(S);
        // Skip the intra-task program-order edge: it stays inside the
        // range we are already scanning.
        if (G.taskOfNode(Succ) == R.Task)
          continue;
        pushFrom(Succ);
        if (Found)
          return true;
      }
    }
  }
  return false;
}

size_t BfsReachability::memoryBytes() const {
  return VisitedPos.capacity() * 4 + VisitedVersion.capacity() * 4;
}

std::unique_ptr<Reachability> cafa::makeReachability(const HbGraph &G,
                                                     ReachMode Mode,
                                                     size_t BudgetBytes,
                                                     bool Defer) {
  switch (Mode) {
  case ReachMode::Closure:
    return std::make_unique<ClosureReachability>(G, BudgetBytes, Defer);
  case ReachMode::Bfs:
    // No precomputed state: nothing to budget, nothing to defer.
    return std::make_unique<BfsReachability>(G);
  case ReachMode::Incremental:
    return std::make_unique<IncrementalClosureReachability>(G, BudgetBytes,
                                                            Defer);
  }
  return std::make_unique<IncrementalClosureReachability>(G, BudgetBytes,
                                                          Defer);
}

const char *cafa::reachModeName(ReachMode Mode) {
  switch (Mode) {
  case ReachMode::Closure:
    return "closure";
  case ReachMode::Bfs:
    return "bfs";
  case ReachMode::Incremental:
    return "incremental";
  }
  return "unknown";
}

size_t cafa::estimateReachabilityMemory(size_t NumNodes, ReachMode Mode) {
  // One closure row is N bits, rounded up to whole 64-bit words.
  size_t RowBytes = ((NumNodes + 63) / 64) * 8;
  switch (Mode) {
  case ReachMode::Closure:
    return NumNodes * RowBytes;
  case ReachMode::Incremental:
    // Rows, plus the per-node dirty flags, plus the snapshot row and the
    // two fact-filter masks.  Strictly above the Closure estimate, which
    // keeps the degradation ladder monotone.
    return NumNodes * RowBytes + NumNodes + 3 * RowBytes;
  case ReachMode::Bfs:
    // Per-task visited-position/version scratch plus the worklist; tasks
    // never outnumber nodes, so per-node is a safe upper bound.
    return NumNodes * 12;
  }
  return NumNodes * RowBytes;
}
