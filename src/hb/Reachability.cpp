//===- hb/Reachability.cpp - Reachability oracles over the HB DAG ----------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "hb/Reachability.h"

#include <cassert>

using namespace cafa;

void ClosureReachability::refresh() {
  size_t N = G.numNodes();
  Rows.resize(N);
  for (BitVec &Row : Rows) {
    if (Row.size() != N)
      Row.resize(N);
    Row.clear();
  }
  // Node ids ascend in trace-record order and every edge points forward,
  // so descending node id is a reverse topological order: successors'
  // rows are final when a node is processed.
  for (size_t I = N; I-- > 0;) {
    BitVec &Row = Rows[I];
    for (uint32_t S : G.successors(NodeId(static_cast<uint32_t>(I)))) {
      Row.set(S);
      Row.orWith(Rows[S]);
    }
  }
}

size_t ClosureReachability::memoryBytes() const {
  size_t Total = 0;
  for (const BitVec &Row : Rows)
    Total += Row.memoryBytes();
  return Total;
}

BfsReachability::BfsReachability(const HbGraph &G)
    : G(G), VisitedPos(G.trace().numTasks(), 0),
      VisitedVersion(G.trace().numTasks(), 0) {}

bool BfsReachability::reaches(NodeId From, NodeId To) const {
  if (From == To)
    return false;
  ++Version;

  TaskId ToTask = G.taskOfNode(To);
  uint32_t ToPos = G.posOfNode(To);
  bool Found = false;

  // Range worklist: (task, lo, hi) = nodes of `task` at positions
  // [lo, hi) whose successors still need expanding.  A task is expanded
  // at most once per position thanks to the VisitedPos high-water mark.
  struct Range {
    TaskId Task;
    uint32_t Lo, Hi;
  };
  std::vector<Range> Ranges;

  auto pushFrom = [&](NodeId Node) {
    TaskId Task = G.taskOfNode(Node);
    uint32_t Lo = G.posOfNode(Node);
    uint32_t Hi;
    if (VisitedVersion[Task.index()] == Version) {
      Hi = VisitedPos[Task.index()];
      if (Lo >= Hi)
        return; // already covered
    } else {
      Hi = static_cast<uint32_t>(G.taskNodes(Task).size());
      VisitedVersion[Task.index()] = Version;
    }
    VisitedPos[Task.index()] = Lo;
    if (Task == ToTask && ToPos >= Lo && ToPos < Hi)
      Found = true;
    Ranges.push_back({Task, Lo, Hi});
  };

  // Seed with the direct successors of From (program order within From's
  // task is one of them: the edge to the next node).
  for (uint32_t S : G.successors(From)) {
    pushFrom(NodeId(S));
    if (Found)
      return true;
  }

  while (!Ranges.empty()) {
    Range R = Ranges.back();
    Ranges.pop_back();
    const std::vector<NodeId> &Nodes = G.taskNodes(R.Task);
    for (uint32_t P = R.Lo; P != R.Hi; ++P) {
      for (uint32_t S : G.successors(Nodes[P])) {
        NodeId Succ(S);
        // Skip the intra-task program-order edge: it stays inside the
        // range we are already scanning.
        if (G.taskOfNode(Succ) == R.Task)
          continue;
        pushFrom(Succ);
        if (Found)
          return true;
      }
    }
  }
  return false;
}

size_t BfsReachability::memoryBytes() const {
  return VisitedPos.capacity() * 4 + VisitedVersion.capacity() * 4;
}

std::unique_ptr<Reachability> cafa::makeReachability(const HbGraph &G,
                                                     bool UseClosure) {
  if (UseClosure)
    return std::make_unique<ClosureReachability>(G);
  return std::make_unique<BfsReachability>(G);
}
