//===- hb/WindowedReach.h - Streaming frontier reachability ----*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded-memory reachability for the windowed detector scan
/// (docs/windowed-analysis.md).
///
/// ChainReachability keeps one *forward* clock row per node for the
/// whole run: Clock[u][c] = min position in chain c that u reaches --
/// O(N * chains) resident.  The windowed scan walks records in
/// admission order and only ever asks "is the earlier access ordered
/// with the one I am admitting *now*", so it needs the mirror-image
/// *backward* formulation instead, and only for nodes near the
/// admission frontier:
///
///   Row[v][c] = 1 + max position in chain c over all nodes u with a
///               nonempty path u -> v   (0 when no such node)
///
///   reaches(u, v)  <=>  Row[v][chainOf(u)] >= posInChain(u) + 1
///
/// over the same greedy chain cover as the chain oracle
/// (greedyChainCover -- shared code, so the two provably agree).  The
/// <=> holds because a chain is a path: every earlier chain member
/// reaches every later one, so "max position reached from" summarizes
/// exactly the set of chain prefixes that reach v.
///
/// Rows are computed by a forward push: admitting node w (all its
/// predecessors have smaller ids, hence earlier records, hence are
/// already admitted) folds w's row plus w's own (chain, pos) into the
/// row of its earliest successor on each chain -- later same-chain
/// successors receive the facts transitively along the chain path, so
/// a saturated graph's redundant long edges never materialize rows
/// (see admit()).  A row is therefore *final* the moment its node is
/// admitted.  Retirement exploits that every query targets
/// lastNodeAtOrBefore(L) with L at the admission cursor, and that
/// lastNodeAtOrBefore resolves *within L's own task*: node v of task t
/// answers queries exactly for the task-t records in [record(v),
/// record of t's next node), so
///
///   RetireAt[v] = the last record (up to the query horizon) whose
///                 lastNodeAtOrBefore is v, or record(v) if none is
///
/// computed in the constructor by replaying that resolution over every
/// record.  The floor at the node's own record keeps a row alive
/// through its admission, where it still has to push to its
/// successors; after that, a successor's row -- allocated eagerly by
/// the push -- carries the facts forward.  Because a quiet task's last
/// node outlives busier tasks' later nodes, RetireAt is not monotone
/// in the id; the retirement sweep instead walks ids presorted by
/// horizon, which is still a single pointer walk per advance.
///
/// Live rows track the frontier width (the latest node plus every
/// future node already targeted by a long edge), not the trace length:
/// the overlay memory is O(live-rows * chains), and the high-water
/// mark is exported for the analyzer's stats block.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_HB_WINDOWEDREACH_H
#define CAFA_HB_WINDOWEDREACH_H

#include "hb/HbGraph.h"
#include "hb/Reachability.h"

#include <cstdint>
#include <vector>

namespace cafa {

/// Streaming backward chain-clock oracle over a *final* (post-fixpoint)
/// happens-before graph.  Not an implementation of the Reachability
/// interface on purpose: it answers only frontier-ordered queries, and
/// the type system should keep it out of the rule engine.
class WindowedReach {
public:
  /// \p QueryHorizon is the last record index that can appear as the
  /// *later* element of a candidate pair (0 when nothing is ever
  /// queried).  The final node's row is held exactly until the cursor
  /// passes it.
  WindowedReach(const HbGraph &G, uint32_t QueryHorizon);

  /// Admits every node with record <= \p RecordCursor and frees every
  /// row whose retirement horizon lies strictly before it; retirement
  /// interleaves with admission, so a coarse cursor jump holds the
  /// frontier's rows, not the jump's.  Cursors must be non-decreasing
  /// across calls.
  void advanceTo(uint32_t RecordCursor);

  /// HbIndex::ordered() for a cross-task record pair, valid once
  /// advanceTo(max(A, B)) has run with max(A, B) at the admission
  /// cursor.  Exact: for cross-task records the later one can never
  /// reach back to the earlier one (every edge points forward in
  /// record order), so ordered() collapses to
  /// reaches(firstNodeAtOrAfter(min), lastNodeAtOrBefore(max)) -- the
  /// query shape the backward rows answer in O(1).
  bool orderedCrossTask(uint32_t A, uint32_t B) const;

  uint32_t numChains() const { return NumChains; }
  /// Currently live frontier rows.
  size_t liveRows() const { return LiveRowCount; }
  /// Current overlay footprint: live rows plus the O(N) cover arrays.
  size_t memoryBytes() const;
  /// Peak count of simultaneously live rows over the whole scan.
  size_t highWaterRows() const { return HighWaterRows; }
  /// Peak overlay bytes attributable to rows (high-water rows * row
  /// width) -- the number the stats block and bench report.
  size_t highWaterRowBytes() const {
    return HighWaterRows * NumChains * sizeof(uint32_t);
  }

private:
  void admit(uint32_t Node);
  uint32_t *rowFor(uint32_t Node);
  void freeRow(uint32_t Node);

  const HbGraph &G;
  ChainCover Cover;
  uint32_t NumChains = 0;

  /// Last record index whose query can still target each node's row
  /// (per-task targeting: not monotone in the node id).
  std::vector<uint32_t> RetireAt;
  /// Node ids sorted by ascending RetireAt; retirement walks this.
  std::vector<uint32_t> RetireOrder;
  uint32_t RetirePtr = 0; ///< first RetireOrder position not yet retired

  /// Node -> slot index into Rows (slot * NumChains), -1 = no live row
  /// (before any predecessor pushed, or after retirement -- an absent
  /// row reads as all-zero, i.e. "nothing reaches this node").
  std::vector<int32_t> RowSlot;
  std::vector<uint32_t> Rows; ///< slot arena, NumChains words per slot
  std::vector<int32_t> FreeSlots;

  /// Push-pruning scratch (see admit()): per-chain epoch stamp, the
  /// earliest successor seen on that chain this admission, and the
  /// chains the current admission touched.
  std::vector<uint64_t> ChainEpoch;
  std::vector<uint32_t> BestSuccOfChain;
  std::vector<uint32_t> TouchedChains;
  uint64_t Epoch = 0;

  uint32_t NextAdmit = 0; ///< first node id not yet admitted
  size_t LiveRowCount = 0;
  size_t HighWaterRows = 0;
};

} // namespace cafa

#endif // CAFA_HB_WINDOWEDREACH_H
