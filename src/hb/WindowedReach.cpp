//===- hb/WindowedReach.cpp - Streaming frontier reachability ---------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "hb/WindowedReach.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace cafa;

WindowedReach::WindowedReach(const HbGraph &G, uint32_t QueryHorizon)
    : G(G) {
  greedyChainCover(G, Cover);
  NumChains = Cover.numChains();
  // Only the per-node arrays are needed for queries; the member lists
  // are the build scaffolding.
  Cover.ChainNodes.clear();
  Cover.ChainNodes.shrink_to_fit();

  const uint32_t N = static_cast<uint32_t>(G.numNodes());
  // lastNodeAtOrBefore is *per-task*: the query at record L targets the
  // latest node of L's own task, which can sit many records behind L
  // when other tasks interleave.  So a node's retirement horizon is the
  // last record that resolves to it -- computed exactly by replaying
  // the query against every record up to the horizon.  Clamping to the
  // node's own record keeps the row alive through its admission (it
  // still has to push to its successors).
  RetireAt.assign(N, 0);
  for (uint32_t I = 0; I != N; ++I)
    RetireAt[I] = G.recordOfNode(NodeId(I));
  if (N != 0)
    for (uint32_t R = 0; R <= QueryHorizon; ++R)
      if (NodeId Q = G.lastNodeAtOrBefore(R); Q.isValid())
        RetireAt[Q.index()] = std::max(RetireAt[Q.index()], R);

  // Per-task targeting makes RetireAt non-monotone in the id (a quiet
  // task's last node outlives busier tasks' later nodes), so the
  // retirement sweep walks ids sorted by horizon instead of raw ids.
  RetireOrder.resize(N);
  for (uint32_t I = 0; I != N; ++I)
    RetireOrder[I] = I;
  std::sort(RetireOrder.begin(), RetireOrder.end(),
            [this](uint32_t A, uint32_t B) { return RetireAt[A] < RetireAt[B]; });

  RowSlot.assign(N, -1);
  ChainEpoch.assign(NumChains, 0);
  BestSuccOfChain.assign(NumChains, 0);
}

uint32_t *WindowedReach::rowFor(uint32_t Node) {
  int32_t Slot = RowSlot[Node];
  if (Slot < 0) {
    if (!FreeSlots.empty()) {
      Slot = FreeSlots.back();
      FreeSlots.pop_back();
      std::memset(Rows.data() + static_cast<size_t>(Slot) * NumChains, 0,
                  NumChains * sizeof(uint32_t));
    } else {
      Slot = static_cast<int32_t>(Rows.size() / NumChains);
      Rows.resize(Rows.size() + NumChains, 0);
    }
    RowSlot[Node] = Slot;
    ++LiveRowCount;
    HighWaterRows = std::max(HighWaterRows, LiveRowCount);
  }
  return Rows.data() + static_cast<size_t>(Slot) * NumChains;
}

void WindowedReach::freeRow(uint32_t Node) {
  int32_t Slot = RowSlot[Node];
  if (Slot < 0)
    return;
  RowSlot[Node] = -1;
  FreeSlots.push_back(Slot);
  --LiveRowCount;
}

void WindowedReach::admit(uint32_t Node) {
  const std::vector<uint32_t> &Succ = G.successors(NodeId(Node));
  if (Succ.empty())
    return;
  // Push only to the *earliest* successor on each chain.  A saturated
  // graph carries transitively redundant long edges (a notify keeps
  // edges to every later wait it orders), and pushing each of them
  // would materialize a row per far-future target.  Dropping an edge
  // to a later same-chain successor loses nothing: chains follow graph
  // edges (greedyChainCover extends along successors), the earliest
  // same-chain successor of any node includes its own chain-next, so
  // the surviving chain path re-delivers the folded facts hop by hop
  // before the dropped target is ever admitted -- the pruned push
  // graph has the same transitive closure, hence identical rows.
  ++Epoch;
  TouchedChains.clear();
  for (uint32_t S : Succ) {
    const uint32_t C = Cover.ChainOf[S];
    if (ChainEpoch[C] != Epoch) {
      ChainEpoch[C] = Epoch;
      BestSuccOfChain[C] = S;
      TouchedChains.push_back(C);
    } else if (Cover.PosInChain[S] < Cover.PosInChain[BestSuccOfChain[C]]) {
      BestSuccOfChain[C] = S;
    }
  }
  const uint32_t C = Cover.ChainOf[Node];
  const uint32_t P = Cover.PosInChain[Node] + 1;
  for (uint32_t TC : TouchedChains) {
    uint32_t *Dst = rowFor(BestSuccOfChain[TC]);
    // rowFor can grow the arena; re-derive the source row after it.
    int32_t WSlot = RowSlot[Node];
    if (WSlot >= 0) {
      const uint32_t *Src =
          Rows.data() + static_cast<size_t>(WSlot) * NumChains;
      for (uint32_t I = 0; I != NumChains; ++I)
        Dst[I] = std::max(Dst[I], Src[I]);
    }
    Dst[C] = std::max(Dst[C], P);
  }
}

void WindowedReach::advanceTo(uint32_t RecordCursor) {
  const uint32_t N = static_cast<uint32_t>(G.numNodes());
  while (NextAdmit < N &&
         G.recordOfNode(NodeId(NextAdmit)) <= RecordCursor) {
    // Retire interleaved with admission: queries only ever run at the
    // final cursor, so a horizon strictly before the record being
    // admitted is already dead -- and RetireAt >= the node's own
    // record, so anything retiring here was admitted (and pushed) in
    // an earlier iteration or call.  Without this, a coarse cursor
    // jump (the scan advances at sweep cadence) would transiently
    // materialize a row for every record in the jump.
    const uint32_t R = G.recordOfNode(NodeId(NextAdmit));
    while (RetirePtr < N && RetireAt[RetireOrder[RetirePtr]] < R) {
      freeRow(RetireOrder[RetirePtr]);
      ++RetirePtr;
    }
    admit(NextAdmit);
    ++NextAdmit;
  }
  while (RetirePtr < N && RetireAt[RetireOrder[RetirePtr]] < RecordCursor) {
    freeRow(RetireOrder[RetirePtr]);
    ++RetirePtr;
  }
}

bool WindowedReach::orderedCrossTask(uint32_t A, uint32_t B) const {
  if (A == B)
    return false;
  const uint32_t E = std::min(A, B), L = std::max(A, B);
  // Cross-task, so hb(L, E) is structurally false: lastNodeAtOrBefore(E)
  // precedes firstNodeAtOrAfter(L) in id order and every edge points
  // forward.  ordered() is exactly hb(E, L).
  NodeId P = G.firstNodeAtOrAfter(E);
  NodeId Q = G.lastNodeAtOrBefore(L);
  if (!P.isValid() || !Q.isValid())
    return false;
  assert(Q.index() < NextAdmit && "query ahead of the admission cursor");
  assert(RetireAt[Q.index()] >= L && "query target already retired");
  int32_t Slot = RowSlot[Q.index()];
  if (Slot < 0)
    return false; // empty row: nothing reaches Q
  const uint32_t *Row = Rows.data() + static_cast<size_t>(Slot) * NumChains;
  return Row[Cover.ChainOf[P.index()]] >= Cover.PosInChain[P.index()] + 1;
}

size_t WindowedReach::memoryBytes() const {
  return Rows.capacity() * sizeof(uint32_t) +
         RowSlot.capacity() * sizeof(int32_t) +
         RetireAt.capacity() * sizeof(uint32_t) +
         RetireOrder.capacity() * sizeof(uint32_t) +
         ChainEpoch.capacity() * sizeof(uint64_t) +
         BestSuccOfChain.capacity() * sizeof(uint32_t) +
         TouchedChains.capacity() * sizeof(uint32_t) +
         FreeSlots.capacity() * sizeof(int32_t) +
         Cover.ChainOf.capacity() * sizeof(uint32_t) +
         Cover.PosInChain.capacity() * sizeof(uint32_t);
}
