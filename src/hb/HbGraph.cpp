//===- hb/HbGraph.cpp - Happens-before graph over a trace -----------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "hb/HbGraph.h"

#include <algorithm>
#include <cassert>

using namespace cafa;

bool cafa::isRelevantOp(OpKind Kind) {
  switch (Kind) {
  case OpKind::TaskBegin:
  case OpKind::TaskEnd:
  case OpKind::Send:
  case OpKind::SendAtFront:
  case OpKind::Fork:
  case OpKind::Join:
  case OpKind::Wait:
  case OpKind::Notify:
  case OpKind::RegisterListener:
  case OpKind::PerformListener:
  case OpKind::IpcSend:
  case OpKind::IpcRecv:
    return true;
  default:
    return false;
  }
}

HbGraph::HbGraph(const Trace &T, const TaskIndex &Index)
    : T(T), Index(Index), RecordNodes(T.numRecords(), 0xFFFFFFFFu),
      PerTaskNodes(T.numTasks()), BeginNodes(T.numTasks()),
      EndNodes(T.numTasks()) {
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.numRecords()); I != E;
       ++I) {
    const TraceRecord &Rec = T.record(I);
    if (!isRelevantOp(Rec.Kind))
      continue;
    NodeId Node(static_cast<uint32_t>(NodeRecords.size()));
    NodeRecords.push_back(I);
    RecordNodes[I] = Node.value();
    NodeTasks.push_back(Rec.Task);
    NodePos.push_back(
        static_cast<uint32_t>(PerTaskNodes[Rec.Task.index()].size()));
    PerTaskNodes[Rec.Task.index()].push_back(Node);
    if (Rec.Kind == OpKind::TaskBegin)
      BeginNodes[Rec.Task.index()] = Node;
    else if (Rec.Kind == OpKind::TaskEnd)
      EndNodes[Rec.Task.index()] = Node;
  }
  Successors.resize(NodeRecords.size());

  // Program-order chain within each task.
  for (const std::vector<NodeId> &Nodes : PerTaskNodes)
    for (size_t I = 0; I + 1 < Nodes.size(); ++I)
      addEdge(Nodes[I], Nodes[I + 1]);
}

NodeId HbGraph::firstNodeAtOrAfter(uint32_t RecordIndex) const {
  const TraceRecord &Rec = T.record(RecordIndex);
  const std::vector<NodeId> &Nodes = PerTaskNodes[Rec.Task.index()];
  // Node ids are assigned in record order, so record indices of a task's
  // nodes are ascending; binary search on the underlying record index.
  auto It = std::lower_bound(
      Nodes.begin(), Nodes.end(), RecordIndex,
      [this](NodeId N, uint32_t R) { return NodeRecords[N.index()] < R; });
  return It == Nodes.end() ? NodeId::invalid() : *It;
}

NodeId HbGraph::lastNodeAtOrBefore(uint32_t RecordIndex) const {
  const TraceRecord &Rec = T.record(RecordIndex);
  const std::vector<NodeId> &Nodes = PerTaskNodes[Rec.Task.index()];
  auto It = std::upper_bound(
      Nodes.begin(), Nodes.end(), RecordIndex,
      [this](uint32_t R, NodeId N) { return R < NodeRecords[N.index()]; });
  return It == Nodes.begin() ? NodeId::invalid() : *(It - 1);
}

bool HbGraph::addEdge(NodeId From, NodeId To) {
  // Salvaged traces are untrusted input: damaged records can propose an
  // ordering that contradicts the observed linearization (a send logged
  // after its event's begin, a self-wait, an out-of-range replayed
  // checkpoint edge).  Trace order is the ground truth, so such edges
  // are dropped -- and since a missing happens-before edge only ever
  // *adds* race candidates, dropping is the conservative repair.
  if (!From.isValid() || !To.isValid() || From == To ||
      From.index() >= NodeRecords.size() ||
      To.index() >= NodeRecords.size() ||
      NodeRecords[From.index()] >= NodeRecords[To.index()]) {
    ++RejectedEdgeCount;
    return false;
  }
  Successors[From.index()].push_back(To.value());
  ++EdgeCount;
  return true;
}
