//===- hb/DotExport.cpp - Graphviz rendering of the HB relation --------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "hb/DotExport.h"

#include "support/Format.h"

#include <sstream>
#include <vector>

using namespace cafa;

namespace {

/// Escapes a label for DOT.
std::string dotEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

} // namespace

std::string cafa::exportHbGraphDot(const HbIndex &Hb, const Trace &T) {
  const HbGraph &G = Hb.graph();
  std::ostringstream OS;
  OS << "digraph cafa_hb {\n"
     << "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";

  // One cluster per task that has nodes.
  for (uint32_t Task = 0, E = static_cast<uint32_t>(T.numTasks());
       Task != E; ++Task) {
    const std::vector<NodeId> &Nodes = G.taskNodes(TaskId(Task));
    if (Nodes.empty())
      continue;
    OS << formatString("  subgraph cluster_t%u {\n", Task)
       << formatString("    label=\"%s\";\n",
                       dotEscape(T.taskName(TaskId(Task))).c_str());
    for (NodeId Node : Nodes) {
      const TraceRecord &Rec = T.record(G.recordOfNode(Node));
      OS << formatString("    n%u [label=\"%s\"];\n", Node.value(),
                         opKindName(Rec.Kind));
    }
    OS << "  }\n";
  }

  for (uint32_t N = 0, E = static_cast<uint32_t>(G.numNodes()); N != E;
       ++N) {
    for (uint32_t Succ : G.successors(NodeId(N))) {
      bool SameTask =
          G.taskOfNode(NodeId(N)) == G.taskOfNode(NodeId(Succ));
      OS << formatString("  n%u -> n%u%s;\n", N, Succ,
                         SameTask ? " [style=dotted]" : "");
    }
  }
  OS << "}\n";
  return OS.str();
}

std::string cafa::exportTaskOrderDot(const HbIndex &Hb, const Trace &T) {
  // Tasks that actually began, in trace order.
  std::vector<TaskId> Tasks;
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.numTasks()); I != E;
       ++I)
    if (Hb.graph().beginNode(TaskId(I)).isValid())
      Tasks.push_back(TaskId(I));

  // Pairwise order, then transitive reduction (edge a->b is redundant if
  // a->m->b for some m).
  size_t N = Tasks.size();
  std::vector<std::vector<bool>> Ord(N, std::vector<bool>(N, false));
  for (size_t A = 0; A != N; ++A)
    for (size_t B = 0; B != N; ++B)
      if (A != B)
        Ord[A][B] = Hb.taskOrdered(Tasks[A], Tasks[B]);

  std::ostringstream OS;
  OS << "digraph cafa_task_order {\n"
     << "  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n";
  for (size_t A = 0; A != N; ++A) {
    const TaskInfo &Info = T.taskInfo(Tasks[A]);
    const char *Shape =
        Info.Kind == TaskKind::Event ? "box" : "ellipse";
    OS << formatString(
        "  t%u [label=\"%s\", shape=%s%s];\n", Tasks[A].value(),
        dotEscape(T.taskName(Tasks[A])).c_str(), Shape,
        Info.External ? ", style=filled, fillcolor=lightgrey" : "");
  }
  for (size_t A = 0; A != N; ++A) {
    for (size_t B = 0; B != N; ++B) {
      if (!Ord[A][B])
        continue;
      bool Redundant = false;
      for (size_t Mid = 0; Mid != N && !Redundant; ++Mid)
        Redundant = Mid != A && Mid != B && Ord[A][Mid] && Ord[Mid][B];
      if (!Redundant)
        OS << formatString("  t%u -> t%u;\n", Tasks[A].value(),
                           Tasks[B].value());
    }
  }
  OS << "}\n";
  return OS.str();
}
