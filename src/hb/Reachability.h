//===- hb/Reachability.h - Reachability oracles over the HB DAG -*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Three interchangeable reachability oracles over the happens-before DAG
/// (Section 4.2: "to test if two operations are ordered, we simply
/// perform a reachability test on the happens-before graph"):
///
///  - ClosureReachability: full transitive closure as one bitset row per
///    node, recomputed from scratch on every refresh().  O(1) queries,
///    O(N^2/8) bytes -- the reference oracle and the fallback when the
///    graph changes in ways an incremental update cannot express.
///  - BfsReachability: per-query pruned search, no precomputation.  Slow
///    queries, O(N) memory -- the memory-frugal alternative, compared in
///    the ablation benchmark.
///  - IncrementalClosureReachability: same closure matrix and O(1)
///    queries, but after the initial build each fixpoint round only
///    propagates the newly inserted edges backward through the existing
///    rows (addEdges), instead of rebuilding all N rows.  The default.
///
/// See docs/hb-reachability.md for the architecture of this layer, the
/// complexity trade-offs, and the fixpoint-round delta protocol.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_HB_REACHABILITY_H
#define CAFA_HB_REACHABILITY_H

#include "hb/HbGraph.h"
#include "support/BitVec.h"

#include <memory>
#include <span>
#include <vector>

namespace cafa {

class WorkerPool;

/// One happens-before edge, as handed to the delta-aware oracle path.
struct HbEdge {
  NodeId From;
  NodeId To;
};

/// One word's worth of reachability facts gained by a delta update:
/// node From now reaches node 64 * WordIdx + b for every set bit b of
/// Bits.  Word granularity keeps collection O(changed words) instead of
/// O(changed bits); consumers unpack with ctz loops.
struct GainedWord {
  uint32_t From;
  uint32_t WordIdx;
  uint64_t Bits;
};

/// Which reachability oracle backs queries and rule evaluation.
enum class ReachMode : uint8_t {
  /// Bitset transitive closure, fully rebuilt every round: O(1) queries,
  /// O(N^2) bits.
  Closure,
  /// Pruned per-query search: slow queries, linear memory.
  Bfs,
  /// Bitset transitive closure maintained incrementally across fixpoint
  /// rounds: O(1) queries, O(N^2) bits, but each round costs only the
  /// backward propagation of that round's delta edges.
  Incremental,
};

/// Answers "is there a path From -> To" on the current graph edges.
class Reachability {
public:
  virtual ~Reachability() = default;

  /// Returns true if \p To is reachable from \p From by a nonempty path
  /// (a node does not reach itself).
  virtual bool reaches(NodeId From, NodeId To) const = 0;

  /// Rebuilds any precomputed state from the graph's current edges.
  virtual void refresh() = 0;

  /// Delta path, called by the rule engine after it inserts a fixpoint
  /// round's \p Edges into the graph.  The graph already contains the
  /// edges when this runs.  Oracles that can update incrementally
  /// override this; the default falls back to a full refresh(), so every
  /// oracle answers identically afterwards.
  virtual void addEdges(std::span<const HbEdge> Edges) { refresh(); }

  /// Returns the closure row array (indexed by node id) if this oracle
  /// precomputes one, else nullptr.  The rule engine's pair scans issue
  /// millions of queries per round; testing a row bit inline instead of
  /// making a virtual reaches() call per pair is a measurable win, and
  /// non-closure oracles simply keep the virtual path.
  virtual const BitVec *rowsOrNull() const { return nullptr; }

  /// Returns per-node flags (indexed by node id) marking the rows whose
  /// reachable set grew during the last addEdges() call, or nullptr when
  /// that is unknown (after a full refresh(), or for oracles without
  /// delta tracking).  A nullptr means "assume every row changed".  The
  /// rule engine uses this for semi-naive re-scanning: a pair whose
  /// premise-source rows are all unchanged since its last evaluation
  /// provably evaluates to the same outcome and is skipped.
  virtual const uint8_t *changedRows() const { return nullptr; }

  /// Installs the premise fact filter for gainedFacts().  Delta-tracking
  /// oracles copy the masks and, on each subsequent addEdges(), record
  /// every reachability fact From -> To that became true with \p Sources
  /// testing From and \p Targets testing To.  The base class ignores the
  /// call: an oracle that rebuilds from scratch cannot say which facts
  /// are new.
  virtual void setFactFilter(const BitVec & /*Sources*/,
                             const BitVec & /*Targets*/) {}

  /// Returns the filtered facts that became true during the last
  /// addEdges() call (word-packed), or nullptr when unknown (no filter
  /// installed, a full refresh() intervened, or no delta tracking).
  /// nullptr means "assume anything may have changed"; an empty vector
  /// is an exact "nothing relevant changed".  This is what lets the
  /// rule engine run true semi-naive rounds: instead of re-scanning
  /// every pair it evaluates only the pairs whose premise just
  /// appeared.
  virtual const std::vector<GainedWord> *gainedWords() const {
    return nullptr;
  }

  /// Approximate memory footprint in bytes (for the ablation bench, and
  /// the *measured* reading the degradation ladder records after a
  /// budgeted build).
  virtual size_t memoryBytes() const = 0;

  /// True when a memory-budgeted build (see makeReachability's
  /// BudgetBytes) gave up before its precomputed state fit the budget.
  /// The oracle is then unusable and the degradation ladder must step
  /// down a rung.  Budget-free oracles always return false.
  virtual bool budgetExceeded() const { return false; }

  /// Serializes the closure row matrix for checkpointing: \p WordsOut
  /// receives numNodes() x WordsPerRow raw 64-bit words, row-major.
  /// Returns false for oracles with no precomputed rows (BFS) -- the
  /// resumed run then recomputes via refresh().  Rows depend only on the
  /// graph's edges, never on the oracle flavor, so a row blob exported
  /// from one closure-based mode imports into the other.
  virtual bool exportClosureRows(std::vector<uint64_t> & /*WordsOut*/,
                                 size_t & /*WordsPerRowOut*/) const {
    return false;
  }

  /// Restores a row matrix exported by exportClosureRows() over a graph
  /// with identical node/edge content, skipping the O(N^2) rebuild.
  /// Returns false when the blob's shape does not match this graph (the
  /// caller falls back to refresh()) or the memory budget is exceeded
  /// (check budgetExceeded() to tell the cases apart).
  virtual bool importClosureRows(const uint64_t * /*Words*/,
                                 size_t /*NumWords*/,
                                 size_t /*WordsPerRow*/) {
    return false;
  }

  /// Lends a worker pool for the duration of the oracle's life (nullptr
  /// detaches).  Closure-based oracles use it to run refresh()/addEdges()
  /// row sweeps as column strips across the pool -- bit-identical to the
  /// sequential sweep by construction (see docs/hb-reachability.md).
  /// Oracles without precomputed state ignore the call.
  virtual void setWorkerPool(WorkerPool * /*Pool*/) {}
};

/// Bitset transitive closure, rebuilt from scratch on refresh().
///
/// \p BudgetBytes, when nonzero, turns construction into a *measured*
/// allocation: rows are counted as they are allocated and the build
/// aborts (budgetExceeded()) the moment the running total passes the
/// budget -- the adaptive-degradation ladder probes actual footprints
/// instead of trusting estimateReachabilityMemory().  \p Defer skips the
/// initial build so a checkpoint resume can importClosureRows() without
/// paying for a refresh it would throw away.
class ClosureReachability final : public Reachability {
public:
  explicit ClosureReachability(const HbGraph &G, size_t BudgetBytes = 0,
                               bool Defer = false)
      : G(G), Budget(BudgetBytes) {
    if (!Defer)
      refresh();
  }

  bool reaches(NodeId From, NodeId To) const override {
    return Rows[From.index()].test(To.index());
  }
  void refresh() override;
  size_t memoryBytes() const override;
  const BitVec *rowsOrNull() const override { return Rows.data(); }
  bool budgetExceeded() const override { return Exceeded; }
  bool exportClosureRows(std::vector<uint64_t> &WordsOut,
                         size_t &WordsPerRowOut) const override;
  bool importClosureRows(const uint64_t *Words, size_t NumWords,
                         size_t WordsPerRow) override;
  void setWorkerPool(WorkerPool *P) override { Pool = P; }

  /// Direct row access for cache-friendly pair scans in the rule engine.
  const BitVec &row(NodeId Node) const { return Rows[Node.index()]; }

private:
  /// Sizes the row matrix under the budget; false (with Exceeded set)
  /// when it does not fit.  Idempotent once allocated.
  bool allocateRows();

  const HbGraph &G;
  std::vector<BitVec> Rows;
  size_t Budget = 0;
  bool Exceeded = false;
  WorkerPool *Pool = nullptr;
};

/// Bitset transitive closure maintained incrementally.
///
/// After the initial build, each fixpoint round hands its freshly
/// inserted edges to addEdges(), which runs one reverse-topological
/// sweep over the id prefix [0, max batch source]: node n absorbs
/// {v} union row(v) for each batch edge n -> v, then re-absorbs row(s)
/// for each successor s whose row grew earlier in the same sweep
/// ("dirty").  Edge insertion is monotone, so rows only grow and never
/// need clearing, and a node with no batch edge and no dirty successor
/// costs a flag scan of its adjacency list -- not a row union.  The
/// sweep is therefore bounded above by one full rebuild and is far
/// cheaper once the closure stabilizes and deltas shrink.
///
/// Two structural facts of the HB DAG make this work:
///  - node ids ascend in trace-record order and every edge points
///    forward, so descending id is a reverse topological order and a
///    node's row holds only bits above its own id (which lets every
///    union start at the successor's word, BitVec::orWithFrom, skipping
///    the dead low half of the row on average);
///  - program order chains each task's nodes, so typical adjacency
///    lists hold one chain edge plus few cross-task edges and the
///    clean-node scan is cheap.
class IncrementalClosureReachability final : public Reachability {
public:
  /// BudgetBytes/Defer: same contract as ClosureReachability.  The
  /// budgeted build allocates the delta-tracking extras (dirty flags,
  /// snapshot row, fact-filter masks) eagerly so the measured footprint
  /// covers what a fixpoint run will actually commit, keeping the
  /// measured ladder strictly above the plain closure's -- the same
  /// ordering the static estimates promise.
  explicit IncrementalClosureReachability(const HbGraph &G,
                                          size_t BudgetBytes = 0,
                                          bool Defer = false)
      : G(G), Budget(BudgetBytes) {
    if (!Defer)
      refresh();
  }

  bool reaches(NodeId From, NodeId To) const override {
    return Rows[From.index()].test(To.index());
  }
  void refresh() override;
  void addEdges(std::span<const HbEdge> Edges) override;
  size_t memoryBytes() const override;
  const BitVec *rowsOrNull() const override { return Rows.data(); }
  bool budgetExceeded() const override { return Exceeded; }
  bool exportClosureRows(std::vector<uint64_t> &WordsOut,
                         size_t &WordsPerRowOut) const override;
  bool importClosureRows(const uint64_t *Words, size_t NumWords,
                         size_t WordsPerRow) override;
  const uint8_t *changedRows() const override {
    return DirtyValid ? Dirty.data() : nullptr;
  }
  void setFactFilter(const BitVec &Sources, const BitVec &Targets) override {
    SrcMask = Sources;
    TgtMask = Targets;
    HasFilter = true;
    FactsValid = false;
  }
  const std::vector<GainedWord> *gainedWords() const override {
    return FactsValid ? &Gained : nullptr;
  }
  void setWorkerPool(WorkerPool *P) override { Pool = P; }

  /// Direct row access (same contract as ClosureReachability::row).
  const BitVec &row(NodeId Node) const { return Rows[Node.index()]; }

private:
  /// Sizes the rows and delta-tracking extras under the budget; false
  /// (with Exceeded set) when they do not fit.  Idempotent.
  bool allocateRows();

  /// Per-strip scratch for the column-parallel delta sweep: strip-local
  /// dirty flags ("this strip's words of row n grew"), a strip-local
  /// snapshot row, the strip's gained-word list, all merged
  /// deterministically after the round barrier.
  struct StripScratch {
    std::vector<uint8_t> Dirty;
    BitVec Snap;
    std::vector<GainedWord> Gained;
  };

  /// One strip's share of the delta sweep: words [Lo, Hi) of every row.
  void sweepStrip(StripScratch &SS, size_t Lo, size_t Hi, uint32_t MaxFrom,
                  bool Collect);

  const HbGraph &G;
  std::vector<BitVec> Rows;
  size_t Budget = 0;
  bool Exceeded = false;
  /// Edges reflected in Rows; addEdges falls back to a full refresh()
  /// if the graph drifted from what it was told about.
  size_t KnownEdges = 0;
  /// Scratch for addEdges: the batch sorted by source id descending,
  /// and a per-node "row grew during this sweep" flag.  The flags double
  /// as the changedRows() report, valid only after a delta sweep (a full
  /// refresh loses track of which rows changed).
  std::vector<HbEdge> SortedBatch;
  std::vector<uint8_t> Dirty;
  bool DirtyValid = false;
  /// Premise fact filter (copies -- the caller's masks may not outlive
  /// us) and the facts gained in the last delta sweep.  SnapRow is the
  /// pre-sweep snapshot of the row being updated, diffed after its
  /// unions to enumerate exactly the bits the sweep added.
  BitVec SrcMask, TgtMask;
  bool HasFilter = false;
  std::vector<GainedWord> Gained;
  bool FactsValid = false;
  BitVec SnapRow;
  WorkerPool *Pool = nullptr;
  std::vector<StripScratch> Strips;
};

/// On-demand search with per-task pruning: a visit to node n of task t
/// implies all later nodes of t are reachable via program order, so each
/// task is expanded at most once per query.
class BfsReachability final : public Reachability {
public:
  explicit BfsReachability(const HbGraph &G);

  bool reaches(NodeId From, NodeId To) const override;
  void refresh() override {} // reads live edges; nothing cached
  size_t memoryBytes() const override;

private:
  const HbGraph &G;
  /// Scratch (mutable per query): per-task minimal visited node position,
  /// versioned to avoid clearing between queries.
  mutable std::vector<uint32_t> VisitedPos;
  mutable std::vector<uint32_t> VisitedVersion;
  mutable uint32_t Version = 0;
  mutable std::vector<NodeId> Worklist;
};

/// Creates the oracle selected by \p Mode.  \p BudgetBytes, when
/// nonzero, bounds what a closure-based oracle may allocate (the build
/// aborts into budgetExceeded() instead of overshooting); BFS carries no
/// precomputed state and ignores the budget -- it is the ladder's floor.
/// \p Defer skips the initial build (see ClosureReachability).
std::unique_ptr<Reachability> makeReachability(const HbGraph &G,
                                               ReachMode Mode,
                                               size_t BudgetBytes = 0,
                                               bool Defer = false);

/// Returns a stable lowercase name for \p Mode ("incremental", "closure",
/// "bfs"), for CLI flags and degradation diagnostics.
const char *reachModeName(ReachMode Mode);

/// Upper-bound estimate of what the \p Mode oracle will allocate for a
/// graph of \p NumNodes nodes, in bytes, *before* building it.  The
/// graceful-degradation ladder (HbOptions::MemLimitBytes) now steps
/// rungs from the *measured* footprint of a budgeted build (see
/// makeReachability's BudgetBytes); this estimate remains the planning
/// aid for sizing limits up front, stays monotone along the ladder
/// (Bfs < Closure < Incremental), and errs high, never low.
/// Closure-based modes are dominated by the N x N bit matrix; Bfs keeps
/// only per-task scratch, bounded above by per-node.
size_t estimateReachabilityMemory(size_t NumNodes, ReachMode Mode);

} // namespace cafa

#endif // CAFA_HB_REACHABILITY_H
