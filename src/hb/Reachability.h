//===- hb/Reachability.h - Reachability oracles over the HB DAG -*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two interchangeable reachability oracles over the happens-before DAG
/// (Section 4.2: "to test if two operations are ordered, we simply
/// perform a reachability test on the happens-before graph"):
///
///  - ClosureReachability: full transitive closure as one bitset row per
///    node, computed in reverse topological (= reverse trace) order.
///    O(1) queries, O(N^2/8) bytes -- the default, and what makes the
///    quadratic rule scans of the fixpoint affordable.
///  - BfsReachability: per-query pruned search, no precomputation.  Slow
///    queries, O(N) memory -- the memory-frugal alternative, compared in
///    the ablation benchmark.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_HB_REACHABILITY_H
#define CAFA_HB_REACHABILITY_H

#include "hb/HbGraph.h"
#include "support/BitVec.h"

#include <memory>
#include <vector>

namespace cafa {

/// Answers "is there a path From -> To" on the current graph edges.
class Reachability {
public:
  virtual ~Reachability() = default;

  /// Returns true if \p To is reachable from \p From by a nonempty path
  /// (a node does not reach itself).
  virtual bool reaches(NodeId From, NodeId To) const = 0;

  /// Called by the rule engine after it adds edges; oracles refresh any
  /// precomputed state.
  virtual void refresh() = 0;

  /// Approximate memory footprint in bytes (for the ablation bench).
  virtual size_t memoryBytes() const = 0;
};

/// Bitset transitive closure.
class ClosureReachability final : public Reachability {
public:
  explicit ClosureReachability(const HbGraph &G) : G(G) { refresh(); }

  bool reaches(NodeId From, NodeId To) const override {
    return Rows[From.index()].test(To.index());
  }
  void refresh() override;
  size_t memoryBytes() const override;

  /// Direct row access for cache-friendly pair scans in the rule engine.
  const BitVec &row(NodeId Node) const { return Rows[Node.index()]; }

private:
  const HbGraph &G;
  std::vector<BitVec> Rows;
};

/// On-demand search with per-task pruning: a visit to node n of task t
/// implies all later nodes of t are reachable via program order, so each
/// task is expanded at most once per query.
class BfsReachability final : public Reachability {
public:
  explicit BfsReachability(const HbGraph &G);

  bool reaches(NodeId From, NodeId To) const override;
  void refresh() override {} // reads live edges; nothing cached
  size_t memoryBytes() const override;

private:
  const HbGraph &G;
  /// Scratch (mutable per query): per-task minimal visited node position,
  /// versioned to avoid clearing between queries.
  mutable std::vector<uint32_t> VisitedPos;
  mutable std::vector<uint32_t> VisitedVersion;
  mutable uint32_t Version = 0;
  mutable std::vector<NodeId> Worklist;
};

/// Creates the oracle selected by \p UseClosure.
std::unique_ptr<Reachability> makeReachability(const HbGraph &G,
                                               bool UseClosure);

} // namespace cafa

#endif // CAFA_HB_REACHABILITY_H
