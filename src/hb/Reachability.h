//===- hb/Reachability.h - Reachability oracles over the HB DAG -*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Four interchangeable reachability oracles over the happens-before DAG
/// (Section 4.2: "to test if two operations are ordered, we simply
/// perform a reachability test on the happens-before graph"):
///
///  - ClosureReachability: full transitive closure as one bitset row per
///    node, recomputed from scratch on every refresh().  O(1) queries,
///    O(N^2/8) bytes -- the reference oracle and the fallback when the
///    graph changes in ways an incremental update cannot express.
///  - BfsReachability: per-query pruned search, no precomputation.  Slow
///    queries, O(N) memory -- the memory-frugal alternative, compared in
///    the ablation benchmark.
///  - IncrementalClosureReachability: same closure matrix and O(1)
///    queries, but after the initial build each fixpoint round only
///    propagates the newly inserted edges backward through the existing
///    rows (addEdges), instead of rebuilding all N rows.  The default.
///  - ChainReachability: greedy path cover of the DAG into chains plus
///    one min-position clock entry per (node, chain).  O(chains) rows
///    instead of O(N) bits per row -- near-linear memory on the "few
///    chains, long chains" shape event-driven traces converge to, with
///    the same O(1) queries and the same exact delta reports once the
///    clocks are live (docs/chain-reachability.md).
///
/// See docs/hb-reachability.md for the architecture of this layer, the
/// complexity trade-offs (including the mode decision table), and the
/// fixpoint-round delta protocol.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_HB_REACHABILITY_H
#define CAFA_HB_REACHABILITY_H

#include "hb/HbGraph.h"
#include "support/BitVec.h"

#include <memory>
#include <span>
#include <vector>

namespace cafa {

class WorkerPool;

/// One happens-before edge, as handed to the delta-aware oracle path.
struct HbEdge {
  NodeId From;
  NodeId To;
};

/// One word's worth of reachability facts gained by a delta update:
/// node From now reaches node 64 * WordIdx + b for every set bit b of
/// Bits.  Word granularity keeps collection O(changed words) instead of
/// O(changed bits); consumers unpack with ctz loops.
struct GainedWord {
  uint32_t From;
  uint32_t WordIdx;
  uint64_t Bits;
};

/// Which reachability oracle backs queries and rule evaluation.
/// Serialized into checkpoints by value -- new modes append, existing
/// values never renumber.
enum class ReachMode : uint8_t {
  /// Bitset transitive closure, fully rebuilt every round: O(1) queries,
  /// O(N^2) bits.
  Closure,
  /// Pruned per-query search: slow queries, linear memory.
  Bfs,
  /// Bitset transitive closure maintained incrementally across fixpoint
  /// rounds: O(1) queries, O(N^2) bits, but each round costs only the
  /// backward propagation of that round's delta edges.
  Incremental,
  /// Chain decomposition with per-node chain clocks: O(1) queries,
  /// O(N * chains) memory -- near-linear on event-driven traces, where
  /// looper serialization collapses the saturated DAG into few chains.
  Chain,
  /// Not an oracle: "no explicit request".  resolveReachMode() turns it
  /// into a concrete mode via the CAFA_REACH environment variable
  /// (request > env > Incremental, mirroring the thread knobs' 0 = auto
  /// convention).  Never reaches makeReachability() or a checkpoint.
  Auto,
};

/// Resolves \p Requested against the CAFA_REACH environment knob: an
/// explicit request wins; Auto consults CAFA_REACH ("incremental",
/// "closure", "chain", "bfs"); unset or unrecognized falls back to
/// Incremental, the default oracle.
ReachMode resolveReachMode(ReachMode Requested);

/// A greedy path cover of the happens-before DAG into chains.  Every
/// node belongs to exactly one chain; a chain's members ascend in node
/// id, and consecutive members are connected by graph edges, so earlier
/// members reach later members (the chain-prefix property both the
/// ChainReachability clocks and the windowed frontier summaries rely
/// on).  Produced by greedyChainCover(); a pure function of the
/// adjacency lists, so it is identical wherever it is recomputed.
struct ChainCover {
  /// Sentinel in ChainOf while the cover is being built; never present
  /// in a finished cover.
  static constexpr uint32_t Unassigned = 0xFFFFFFFFu;
  std::vector<uint32_t> ChainOf;     ///< node id -> chain index
  std::vector<uint32_t> PosInChain;  ///< node id -> position in its chain
  std::vector<std::vector<uint32_t>> ChainNodes; ///< chain -> node ids
  uint32_t numChains() const {
    return static_cast<uint32_t>(ChainNodes.size());
  }
};

/// Computes the canonical greedy path cover of \p G: walk ids
/// ascending, start a chain at every unassigned node, extend along the
/// smallest-id unassigned successor.  O(N + E).  Shared by
/// ChainReachability (forward clocks) and hb/WindowedReach (backward
/// frontier clocks) so the two provably agree on the decomposition.
void greedyChainCover(const HbGraph &G, ChainCover &Out);

/// Answers "is there a path From -> To" on the current graph edges.
class Reachability {
public:
  virtual ~Reachability() = default;

  /// Returns true if \p To is reachable from \p From by a nonempty path
  /// (a node does not reach itself).
  virtual bool reaches(NodeId From, NodeId To) const = 0;

  /// Rebuilds any precomputed state from the graph's current edges.
  virtual void refresh() = 0;

  /// Delta path, called by the rule engine after it inserts a fixpoint
  /// round's \p Edges into the graph.  The graph already contains the
  /// edges when this runs.  Oracles that can update incrementally
  /// override this; the default falls back to a full refresh(), so every
  /// oracle answers identically afterwards.
  virtual void addEdges(std::span<const HbEdge> Edges) { refresh(); }

  /// Returns the closure row array (indexed by node id) if this oracle
  /// precomputes one, else nullptr.  The rule engine's pair scans issue
  /// millions of queries per round; testing a row bit inline instead of
  /// making a virtual reaches() call per pair is a measurable win, and
  /// non-closure oracles simply keep the virtual path.
  virtual const BitVec *rowsOrNull() const { return nullptr; }

  /// Returns per-node flags (indexed by node id) marking the rows whose
  /// reachable set grew during the last addEdges() call, or nullptr when
  /// that is unknown (after a full refresh(), or for oracles without
  /// delta tracking).  A nullptr means "assume every row changed".  The
  /// rule engine uses this for semi-naive re-scanning: a pair whose
  /// premise-source rows are all unchanged since its last evaluation
  /// provably evaluates to the same outcome and is skipped.
  virtual const uint8_t *changedRows() const { return nullptr; }

  /// Installs the premise fact filter for gainedFacts().  Delta-tracking
  /// oracles copy the masks and, on each subsequent addEdges(), record
  /// every reachability fact From -> To that became true with \p Sources
  /// testing From and \p Targets testing To.  The base class ignores the
  /// call: an oracle that rebuilds from scratch cannot say which facts
  /// are new.
  virtual void setFactFilter(const BitVec & /*Sources*/,
                             const BitVec & /*Targets*/) {}

  /// Returns the filtered facts that became true during the last
  /// addEdges() call (word-packed), or nullptr when unknown (no filter
  /// installed, a full refresh() intervened, or no delta tracking).
  /// nullptr means "assume anything may have changed"; an empty vector
  /// is an exact "nothing relevant changed".  This is what lets the
  /// rule engine run true semi-naive rounds: instead of re-scanning
  /// every pair it evaluates only the pairs whose premise just
  /// appeared.
  virtual const std::vector<GainedWord> *gainedWords() const {
    return nullptr;
  }

  /// Approximate memory footprint in bytes (for the ablation bench, and
  /// the *measured* reading the degradation ladder records after a
  /// budgeted build).
  virtual size_t memoryBytes() const = 0;

  /// True when a memory-budgeted build (see makeReachability's
  /// BudgetBytes) gave up before its precomputed state fit the budget.
  /// The oracle is then unusable and the degradation ladder must step
  /// down a rung.  Budget-free oracles always return false.
  virtual bool budgetExceeded() const { return false; }

  /// Serializes the closure row matrix for checkpointing: \p WordsOut
  /// receives numNodes() x WordsPerRow raw 64-bit words, row-major.
  /// Returns false for oracles with no precomputed rows (BFS) -- the
  /// resumed run then recomputes via refresh().  Rows depend only on the
  /// graph's edges, never on the oracle flavor, so a row blob exported
  /// from one closure-based mode imports into the other.
  virtual bool exportClosureRows(std::vector<uint64_t> & /*WordsOut*/,
                                 size_t & /*WordsPerRowOut*/) const {
    return false;
  }

  /// Restores a row matrix exported by exportClosureRows() over a graph
  /// with identical node/edge content, skipping the O(N^2) rebuild.
  /// Returns false when the blob's shape does not match this graph (the
  /// caller falls back to refresh()) or the memory budget is exceeded
  /// (check budgetExceeded() to tell the cases apart).
  virtual bool importClosureRows(const uint64_t * /*Words*/,
                                 size_t /*NumWords*/,
                                 size_t /*WordsPerRow*/) {
    return false;
  }

  /// Serializes the chain decomposition + clock matrix for
  /// checkpointing (the chain-mode analogue of exportClosureRows; the
  /// two blobs are intentionally *not* interchangeable -- a chain blob
  /// restored into a closure rung, or vice versa, fails the shape check
  /// and the resume recomputes with refresh(), which is pure time, not
  /// lost work; see docs/robustness.md, "Cross-mode resume").  Returns
  /// false for every oracle without chain clocks.
  virtual bool exportChainState(std::vector<uint64_t> & /*WordsOut*/) const {
    return false;
  }

  /// Restores a blob exported by exportChainState() over a graph with
  /// identical node/edge content.  Returns false on shape mismatch or
  /// budget overrun (same contract as importClosureRows).
  virtual bool importChainState(const uint64_t * /*Words*/,
                                size_t /*NumWords*/) {
    return false;
  }

  /// True when reaches() may be issued from several threads at once.
  /// The default covers the closure oracles: an immutable row matrix is
  /// safe to read concurrently.  BfsReachability overrides to false
  /// (per-query scratch); ChainReachability answers by phase (clock
  /// lookups are safe, its search fallback is not).  HbIndex's rule
  /// engine and the detector's parallel pair scan gate on this.
  virtual bool concurrentQueriesSafe() const { return rowsOrNull() != nullptr; }

  /// Chains in the oracle's current decomposition (0 for oracles that
  /// do not decompose).  Informational: surfaces in HbDegradation for
  /// the scaling benches' chain-count statistics.
  virtual size_t chainCount() const { return 0; }

  /// Lends a worker pool for the duration of the oracle's life (nullptr
  /// detaches).  Closure-based oracles use it to run refresh()/addEdges()
  /// row sweeps as column strips across the pool -- bit-identical to the
  /// sequential sweep by construction (see docs/hb-reachability.md).
  /// Oracles without precomputed state ignore the call.
  virtual void setWorkerPool(WorkerPool * /*Pool*/) {}
};

/// Bitset transitive closure, rebuilt from scratch on refresh().
///
/// \p BudgetBytes, when nonzero, turns construction into a *measured*
/// allocation: rows are counted as they are allocated and the build
/// aborts (budgetExceeded()) the moment the running total passes the
/// budget -- the adaptive-degradation ladder probes actual footprints
/// instead of trusting estimateReachabilityMemory().  \p Defer skips the
/// initial build so a checkpoint resume can importClosureRows() without
/// paying for a refresh it would throw away.
class ClosureReachability final : public Reachability {
public:
  explicit ClosureReachability(const HbGraph &G, size_t BudgetBytes = 0,
                               bool Defer = false)
      : G(G), Budget(BudgetBytes) {
    if (!Defer)
      refresh();
  }

  bool reaches(NodeId From, NodeId To) const override {
    return Rows[From.index()].test(To.index());
  }
  void refresh() override;
  size_t memoryBytes() const override;
  const BitVec *rowsOrNull() const override { return Rows.data(); }
  bool budgetExceeded() const override { return Exceeded; }
  bool exportClosureRows(std::vector<uint64_t> &WordsOut,
                         size_t &WordsPerRowOut) const override;
  bool importClosureRows(const uint64_t *Words, size_t NumWords,
                         size_t WordsPerRow) override;
  void setWorkerPool(WorkerPool *P) override { Pool = P; }

  /// Direct row access for cache-friendly pair scans in the rule engine.
  const BitVec &row(NodeId Node) const { return Rows[Node.index()]; }

private:
  /// Sizes the row matrix under the budget; false (with Exceeded set)
  /// when it does not fit.  Idempotent once allocated.
  bool allocateRows();

  const HbGraph &G;
  std::vector<BitVec> Rows;
  size_t Budget = 0;
  bool Exceeded = false;
  WorkerPool *Pool = nullptr;
};

/// Bitset transitive closure maintained incrementally.
///
/// After the initial build, each fixpoint round hands its freshly
/// inserted edges to addEdges(), which runs one reverse-topological
/// sweep over the id prefix [0, max batch source]: node n absorbs
/// {v} union row(v) for each batch edge n -> v, then re-absorbs row(s)
/// for each successor s whose row grew earlier in the same sweep
/// ("dirty").  Edge insertion is monotone, so rows only grow and never
/// need clearing, and a node with no batch edge and no dirty successor
/// costs a flag scan of its adjacency list -- not a row union.  The
/// sweep is therefore bounded above by one full rebuild and is far
/// cheaper once the closure stabilizes and deltas shrink.
///
/// Two structural facts of the HB DAG make this work:
///  - node ids ascend in trace-record order and every edge points
///    forward, so descending id is a reverse topological order and a
///    node's row holds only bits above its own id (which lets every
///    union start at the successor's word, BitVec::orWithFrom, skipping
///    the dead low half of the row on average);
///  - program order chains each task's nodes, so typical adjacency
///    lists hold one chain edge plus few cross-task edges and the
///    clean-node scan is cheap.
class IncrementalClosureReachability final : public Reachability {
public:
  /// BudgetBytes/Defer: same contract as ClosureReachability.  The
  /// budgeted build allocates the delta-tracking extras (dirty flags,
  /// snapshot row, fact-filter masks) eagerly so the measured footprint
  /// covers what a fixpoint run will actually commit, keeping the
  /// measured ladder strictly above the plain closure's -- the same
  /// ordering the static estimates promise.
  explicit IncrementalClosureReachability(const HbGraph &G,
                                          size_t BudgetBytes = 0,
                                          bool Defer = false)
      : G(G), Budget(BudgetBytes) {
    if (!Defer)
      refresh();
  }

  bool reaches(NodeId From, NodeId To) const override {
    return Rows[From.index()].test(To.index());
  }
  void refresh() override;
  void addEdges(std::span<const HbEdge> Edges) override;
  size_t memoryBytes() const override;
  const BitVec *rowsOrNull() const override { return Rows.data(); }
  bool budgetExceeded() const override { return Exceeded; }
  bool exportClosureRows(std::vector<uint64_t> &WordsOut,
                         size_t &WordsPerRowOut) const override;
  bool importClosureRows(const uint64_t *Words, size_t NumWords,
                         size_t WordsPerRow) override;
  const uint8_t *changedRows() const override {
    return DirtyValid ? Dirty.data() : nullptr;
  }
  void setFactFilter(const BitVec &Sources, const BitVec &Targets) override {
    SrcMask = Sources;
    TgtMask = Targets;
    HasFilter = true;
    FactsValid = false;
  }
  const std::vector<GainedWord> *gainedWords() const override {
    return FactsValid ? &Gained : nullptr;
  }
  void setWorkerPool(WorkerPool *P) override { Pool = P; }

  /// Direct row access (same contract as ClosureReachability::row).
  const BitVec &row(NodeId Node) const { return Rows[Node.index()]; }

private:
  /// Sizes the rows and delta-tracking extras under the budget; false
  /// (with Exceeded set) when they do not fit.  Idempotent.
  bool allocateRows();

  /// Per-strip scratch for the column-parallel delta sweep: strip-local
  /// dirty flags ("this strip's words of row n grew"), a strip-local
  /// snapshot row, the strip's gained-word list, all merged
  /// deterministically after the round barrier.
  struct StripScratch {
    std::vector<uint8_t> Dirty;
    BitVec Snap;
    std::vector<GainedWord> Gained;
  };

  /// One strip's share of the delta sweep: words [Lo, Hi) of every row.
  void sweepStrip(StripScratch &SS, size_t Lo, size_t Hi, uint32_t MaxFrom,
                  bool Collect);

  const HbGraph &G;
  std::vector<BitVec> Rows;
  size_t Budget = 0;
  bool Exceeded = false;
  /// Edges reflected in Rows; addEdges falls back to a full refresh()
  /// if the graph drifted from what it was told about.
  size_t KnownEdges = 0;
  /// Scratch for addEdges: the batch sorted by source id descending,
  /// and a per-node "row grew during this sweep" flag.  The flags double
  /// as the changedRows() report, valid only after a delta sweep (a full
  /// refresh loses track of which rows changed).
  std::vector<HbEdge> SortedBatch;
  std::vector<uint8_t> Dirty;
  bool DirtyValid = false;
  /// Premise fact filter (copies -- the caller's masks may not outlive
  /// us) and the facts gained in the last delta sweep.  SnapRow is the
  /// pre-sweep snapshot of the row being updated, diffed after its
  /// unions to enumerate exactly the bits the sweep added.
  BitVec SrcMask, TgtMask;
  bool HasFilter = false;
  std::vector<GainedWord> Gained;
  bool FactsValid = false;
  BitVec SnapRow;
  WorkerPool *Pool = nullptr;
  std::vector<StripScratch> Strips;
};

/// On-demand search with per-task pruning: a visit to node n of task t
/// implies all later nodes of t are reachable via program order, so each
/// task is expanded at most once per query.
class BfsReachability final : public Reachability {
public:
  explicit BfsReachability(const HbGraph &G);

  bool reaches(NodeId From, NodeId To) const override;
  void refresh() override {} // reads live edges; nothing cached
  size_t memoryBytes() const override;

private:
  const HbGraph &G;
  /// Scratch (mutable per query): per-task minimal visited node position,
  /// versioned to avoid clearing between queries.
  mutable std::vector<uint32_t> VisitedPos;
  mutable std::vector<uint32_t> VisitedVersion;
  mutable uint32_t Version = 0;
  mutable std::vector<NodeId> Worklist;
};

/// Chain-decomposition reachability: near-linear memory on the "few
/// chains, long chains" graphs event-driven traces saturate into.
///
/// refresh() greedily covers the DAG with vertex-disjoint *paths*
/// ("chains"): walk node ids ascending, start a chain at every
/// unassigned node, extend it along the smallest-id unassigned
/// successor.  Every chain is a path in the DAG, so reachability into a
/// chain has the prefix property: if u reaches the chain's member at
/// position p, it reaches every later member through the chain's own
/// edges.  One clock entry per (node, chain) therefore captures the
/// entire closure:
///
///   Clock[u][c] = min position in chain c of any node reachable from u
///                 by a nonempty path        (UNSET if none)
///   reaches(u, v)  <=>  Clock[u][chain(v)] <= pos(v)
///
/// (the mirror image of the backward formulation clock[v][chain(u)] >=
/// pos(u) -- forward clocks match the successor-list graph layout and
/// the descending sweep the closure oracles already use).  The clocks
/// are exact, so addEdges() reports the same changed-row flags and the
/// same element-wise GainedWord stream as the incremental closure, and
/// the rule engine's semi-naive rounds consume them unchanged.
///
/// The catch: the clock matrix is N x chains, and a *base* graph is
/// wide -- pending events are mutually unordered until the queue rules
/// serialize them, so the chain count starts near the event count and
/// only collapses as the fixpoint saturates.  The oracle is therefore
/// dual-phase: while the greedy cover needs more than MaxChainsForClocks
/// chains (or the clocks overrun the byte budget), it runs a *search
/// phase*; every addEdges() re-derives the cover, and the first round
/// whose cover fits builds the clocks and switches to exact incremental
/// updates.
///
/// The search phase itself has two tiers, picked once per build:
///  - Bootstrap (speed): when an incremental-closure row matrix fits
///    within min(BudgetBytes, MaxBootstrapBytes), the oracle embeds one
///    and forwards queries, rows, and exact delta reports to it.  Wide
///    fixpoint rounds then run at full closure speed; the rows are
///    released the moment the clocks commit (the switch round adopts
///    the bootstrap's delta report, so even that round stays exact).
///  - Frugal (memory): otherwise queries go through an embedded pruned
///    search (BfsReachability) in O(N) memory with no delta reports
///    (nullptr -- the engine's conservative full-rescan tier).  This is
///    the tier million-event graphs land in, and it is why the oracle's
///    steady-state memory claim survives at that scale.
///
/// High-water memory is therefore min(BudgetBytes, MaxBootstrapBytes)
/// during a bootstrapped search phase and O(N * chains-at-switch) <=
/// N * 4 * MaxChainsForClocks bytes after the clocks commit (always,
/// in the frugal tier).
class ChainReachability final : public Reachability {
public:
  /// A cover wider than this keeps the oracle in its search phase: the
  /// clock matrix is only ever committed at <= 4 * MaxChainsForClocks
  /// bytes per node.  Wide enough that every saturated event-driven
  /// fixture measured lands orders of magnitude below it, small enough
  /// that the committed matrix stays near-linear.
  static constexpr uint32_t MaxChainsForClocks = 128;
  /// Clock value for "reaches nothing in this chain".
  static constexpr uint32_t Unset = 0xFFFFFFFFu;
  /// Structural cap on the search-phase bootstrap rows: the embedded
  /// incremental closure is only engaged when its estimated footprint
  /// fits min(BudgetBytes, MaxBootstrapBytes).  Sized to admit every
  /// app-scale trace in the repository (<= ~20k nodes) while forcing
  /// million-event graphs into the frugal O(N) tier.
  static constexpr size_t MaxBootstrapBytes = 64ull << 20;

  /// BudgetBytes/Defer: same contract as ClosureReachability, with one
  /// refinement: a budget that admits the linear structures but not the
  /// clock matrix keeps the oracle usable in its search phase instead of
  /// aborting -- budgetExceeded() fires only when even O(N) does not fit.
  explicit ChainReachability(const HbGraph &G, size_t BudgetBytes = 0,
                             bool Defer = false);

  bool reaches(NodeId From, NodeId To) const override;
  void refresh() override;
  void addEdges(std::span<const HbEdge> Edges) override;
  size_t memoryBytes() const override;
  bool budgetExceeded() const override { return Exceeded; }
  /// During a bootstrapped search phase the embedded closure's rows are
  /// lent to the rule engine's inline pair scans, exactly as in
  /// incremental mode; once the clocks commit there is no row matrix.
  const BitVec *rowsOrNull() const override {
    return Boot ? Boot->rowsOrNull() : nullptr;
  }
  const uint8_t *changedRows() const override {
    if (Boot)
      return Boot->changedRows();
    return DirtyValid ? Dirty.data() : nullptr;
  }
  void setFactFilter(const BitVec &Sources, const BitVec &Targets) override {
    SrcMask = Sources;
    TgtMask = Targets;
    HasFilter = true;
    FactsValid = false;
    if (Boot)
      Boot->setFactFilter(Sources, Targets);
  }
  const std::vector<GainedWord> *gainedWords() const override {
    if (Boot)
      return Boot->gainedWords();
    return FactsValid ? &Gained : nullptr;
  }
  bool exportChainState(std::vector<uint64_t> &WordsOut) const override;
  bool importChainState(const uint64_t *Words, size_t NumWords) override;
  /// Clock lookups are const reads of an immutable matrix, and the
  /// bootstrap's row matrix is likewise safe; the frugal search tier
  /// mutates per-query scratch and must stay sequential.
  bool concurrentQueriesSafe() const override {
    return ClocksValid || Boot != nullptr;
  }
  size_t chainCount() const override { return NumChains; }
  void setWorkerPool(WorkerPool *P) override {
    Pool = P;
    if (Boot)
      Boot->setWorkerPool(P);
  }

  /// True once the clock matrix is live (the exact-delta phase).  Tests
  /// assert this so a policy regression cannot silently demote the
  /// differential suites to the search phase.
  bool clocksActive() const { return ClocksValid; }

private:
  /// Greedy path cover over the graph's current edges; deterministic
  /// (pure function of the adjacency lists), so checkpointed clocks are
  /// byte-stable across save/resume.  Chain members ascend in node id.
  void decompose();
  /// Engages (or refreshes) the bootstrap closure when its estimated
  /// footprint fits min(Budget, MaxBootstrapBytes); otherwise releases
  /// it, leaving the frugal search tier.
  void maybeBootstrap();
  /// Commits the N x NumChains clock matrix if the cover and budget
  /// admit it; otherwise stays in the search phase.  Returns ClocksValid.
  bool buildClocks();
  /// Footprint of the always-present linear structures.
  size_t baseBytes() const;

  const HbGraph &G;
  size_t Budget = 0;
  bool Exceeded = false;
  /// Edges reflected in the decomposition/clocks; addEdges falls back to
  /// refresh() if the graph drifted (same protocol as the incremental
  /// closure).
  size_t KnownEdges = 0;

  uint32_t NumChains = 0;
  std::vector<uint32_t> ChainOf;    // node -> chain index
  std::vector<uint32_t> PosInChain; // node -> position within its chain
  std::vector<std::vector<uint32_t>> ChainNodes; // chain -> members, ascending

  bool ClocksValid = false;
  std::vector<uint32_t> Clocks; // row-major, N rows of NumChains entries

  /// Delta reporting (identical contract to the incremental closure).
  std::vector<HbEdge> SortedBatch;
  std::vector<uint8_t> Dirty;
  bool DirtyValid = false;
  BitVec SrcMask, TgtMask;
  bool HasFilter = false;
  std::vector<GainedWord> Gained;
  bool FactsValid = false;
  std::vector<uint32_t> OldClock;   // pre-sweep snapshot of one clock row
  std::vector<uint32_t> NewTargets; // newly reachable nodes, for packing

  /// Search-phase query path, frugal tier (reads live edges, per-query
  /// scratch).
  BfsReachability Search;
  /// Search-phase bootstrap tier: an embedded incremental closure that
  /// serves queries, rows, and exact deltas while the cover is still
  /// wide.  Engaged only when it fits min(Budget, MaxBootstrapBytes);
  /// released the moment the clocks commit.  Invariant: Boot is null
  /// whenever ClocksValid.
  std::unique_ptr<IncrementalClosureReachability> Boot;
  WorkerPool *Pool = nullptr;
};

/// Creates the oracle selected by \p Mode.  \p BudgetBytes, when
/// nonzero, bounds what a closure-based oracle may allocate (the build
/// aborts into budgetExceeded() instead of overshooting); BFS carries no
/// precomputed state and ignores the budget -- it is the ladder's floor.
/// \p Defer skips the initial build (see ClosureReachability).
std::unique_ptr<Reachability> makeReachability(const HbGraph &G,
                                               ReachMode Mode,
                                               size_t BudgetBytes = 0,
                                               bool Defer = false);

/// Returns a stable lowercase name for \p Mode ("incremental", "closure",
/// "chain", "bfs", "auto"), for CLI flags and degradation diagnostics.
const char *reachModeName(ReachMode Mode);

/// Upper-bound estimate of what the \p Mode oracle will allocate for a
/// graph of \p NumNodes nodes, in bytes, *before* building it.  The
/// graceful-degradation ladder (HbOptions::MemLimitBytes) now steps
/// rungs from the *measured* footprint of a budgeted build (see
/// makeReachability's BudgetBytes); this estimate remains the planning
/// aid for sizing limits up front and errs high, never low.  It is
/// monotone along the ladder (Bfs < Chain < Closure < Incremental) from
/// a few thousand nodes up; below that the chain upper bound
/// (4 * min(N, MaxChainsForClocks) bytes per node) can exceed the
/// closure's N^2/8 -- the *measured* ladder is what actually picks
/// rungs, and a budgeted chain build degrades its clocks before
/// overrunning, so the crossover never misleads it.  The chain figure
/// is the *steady-state* footprint: an unbudgeted build may transiently
/// borrow up to ChainReachability::MaxBootstrapBytes of closure rows
/// during its search phase (released at the clock switch); under a
/// nonzero budget the bootstrap is only engaged when it fits the
/// budget, so a budgeted build never overruns this estimate's caller's
/// limit.
/// Closure-based modes are dominated by the N x N bit matrix; Bfs keeps
/// only per-task scratch, bounded above by per-node.
size_t estimateReachabilityMemory(size_t NumNodes, ReachMode Mode);

} // namespace cafa

#endif // CAFA_HB_REACHABILITY_H
