//===- hb/DotExport.h - Graphviz rendering of the HB relation --*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz (DOT) export of the happens-before structure, for debugging
/// causality questions ("why does the detector think these events are
/// concurrent?").  Two granularities:
///
///  - the full node graph: every relevant operation with its edges,
///    clustered by task (large; use on small traces);
///  - the event digest: one node per task, one edge per derived
///    end(a) -> begin(b) relation, transitively reduced for readability.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_HB_DOTEXPORT_H
#define CAFA_HB_DOTEXPORT_H

#include "hb/HbIndex.h"

#include <string>

namespace cafa {

/// Renders the full operation-level graph (clustered by task).
std::string exportHbGraphDot(const HbIndex &Hb, const Trace &T);

/// Renders the task-level digest: nodes are tasks that began, edges are
/// the transitive reduction of the derived task order.
std::string exportTaskOrderDot(const HbIndex &Hb, const Trace &T);

} // namespace cafa

#endif // CAFA_HB_DOTEXPORT_H
