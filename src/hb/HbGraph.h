//===- hb/HbGraph.h - Happens-before graph over a trace --------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The happens-before graph.  Nodes are the *relevant* operations of a
/// trace: task begin/end and every operation that can carry a cross-task
/// edge (send, sendAtFront, fork, join, wait, notify, register, perform,
/// ipc send/receive).  Memory accesses, branches, locks and method frames
/// are not nodes; a query about such a record is answered through the
/// nearest enclosing relevant nodes of its task, which is exact because a
/// task's relevant nodes are chained by program order.  This keeps the
/// node count proportional to the number of events rather than to the
/// number of instructions (Section 4.2 motivates moving away from
/// per-access vector clocks).
///
/// Invariant: every edge points forward in trace-record order, so the
/// graph is acyclic and record order is a topological order.  addEdge()
/// enforces this even against salvaged traces whose damaged records
/// contradict their own linearization -- contradicting edges are
/// rejected (counted in numRejectedEdges()), never inserted.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_HB_HBGRAPH_H
#define CAFA_HB_HBGRAPH_H

#include "support/Ids.h"
#include "trace/Trace.h"

#include <vector>

namespace cafa {

/// Returns true if \p Kind forms a node in the happens-before graph.
bool isRelevantOp(OpKind Kind);

/// The graph structure (nodes + adjacency).  Rule evaluation and
/// reachability live in separate classes.
class HbGraph {
public:
  HbGraph(const Trace &T, const TaskIndex &Index);

  size_t numNodes() const { return NodeRecords.size(); }
  size_t numEdges() const { return EdgeCount; }

  /// The trace record index a node stands for.
  uint32_t recordOfNode(NodeId Node) const {
    return NodeRecords[Node.index()];
  }

  /// The node for a record, or invalid if the record is not relevant.
  NodeId nodeForRecord(uint32_t RecordIndex) const {
    uint32_t V = RecordNodes[RecordIndex];
    return V == 0xFFFFFFFFu ? NodeId::invalid() : NodeId(V);
  }

  /// All nodes of \p Task in ascending task-local order.
  const std::vector<NodeId> &taskNodes(TaskId Task) const {
    return PerTaskNodes[Task.index()];
  }

  /// The task that performed \p Node's record.
  TaskId taskOfNode(NodeId Node) const { return NodeTasks[Node.index()]; }
  /// \p Node's position within taskNodes(taskOfNode(Node)).
  uint32_t posOfNode(NodeId Node) const { return NodePos[Node.index()]; }

  /// The TaskBegin node of \p Task (invalid if the task never began).
  NodeId beginNode(TaskId Task) const { return BeginNodes[Task.index()]; }
  /// The TaskEnd node of \p Task (invalid if the task never ended).
  NodeId endNode(TaskId Task) const { return EndNodes[Task.index()]; }

  /// First node of record's task at-or-after the record (for sources).
  NodeId firstNodeAtOrAfter(uint32_t RecordIndex) const;
  /// Last node of record's task at-or-before the record (for targets).
  NodeId lastNodeAtOrBefore(uint32_t RecordIndex) const;

  /// Adds edge From -> To and returns true; ignores duplicates lazily
  /// (callers dedup via reachability).  Edges violating the
  /// forward-in-record-order invariant (possible with salvaged traces
  /// that contradict their own linearization) are dropped and counted
  /// instead of added, returning false -- trace order is ground truth,
  /// and a missing edge is the conservative direction for detection.
  bool addEdge(NodeId From, NodeId To);

  /// Edges addEdge() refused because they contradicted trace order.
  size_t numRejectedEdges() const { return RejectedEdgeCount; }

  /// Successor node ids of \p Node.
  const std::vector<uint32_t> &successors(NodeId Node) const {
    return Successors[Node.index()];
  }

  const Trace &trace() const { return T; }
  const TaskIndex &taskIndex() const { return Index; }

private:
  const Trace &T;
  const TaskIndex &Index;
  /// Node -> record index (ascending; node ids are in record order).
  std::vector<uint32_t> NodeRecords;
  /// Record index -> node id or 0xFFFFFFFF.
  std::vector<uint32_t> RecordNodes;
  std::vector<std::vector<NodeId>> PerTaskNodes;
  std::vector<TaskId> NodeTasks;
  std::vector<uint32_t> NodePos;
  std::vector<NodeId> BeginNodes;
  std::vector<NodeId> EndNodes;
  std::vector<std::vector<uint32_t>> Successors;
  size_t EdgeCount = 0;
  size_t RejectedEdgeCount = 0;
};

} // namespace cafa

#endif // CAFA_HB_HBGRAPH_H
