//===- hb/HbIndex.cpp - The CAFA causality model ----------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "hb/HbIndex.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace cafa;

namespace {

/// One send/sendAtFront operation targeting a queue.
struct SendOp {
  NodeId Node;
  TaskId Event;
  uint64_t DelayMs;
  bool AtFront;
};

} // namespace

/// Performs the rule evaluation for one HbIndex.
struct HbIndex::Builder {
  const Trace &T;
  HbGraph &G;
  const HbOptions &Opt;
  HbRuleStats &Stats;

  /// Events per queue in observed execution (begin-record) order.
  std::vector<std::vector<TaskId>> QueueEvents;
  /// Send operations per queue in record order.
  std::vector<std::vector<SendOp>> QueueSends;

  Builder(const Trace &T, HbGraph &G, const HbOptions &Opt,
          HbRuleStats &Stats)
      : T(T), G(G), Opt(Opt), Stats(Stats),
        QueueEvents(T.numQueues()), QueueSends(T.numQueues()) {}

  void collect() {
    for (uint32_t I = 0, E = static_cast<uint32_t>(T.numRecords()); I != E;
         ++I) {
      const TraceRecord &Rec = T.record(I);
      if (Rec.Kind == OpKind::TaskBegin) {
        const TaskInfo &Info = T.taskInfo(Rec.Task);
        if (Info.Kind == TaskKind::Event && Info.Queue.isValid())
          QueueEvents[Info.Queue.index()].push_back(Rec.Task);
        continue;
      }
      if (Rec.Kind == OpKind::Send || Rec.Kind == OpKind::SendAtFront) {
        SendOp Op;
        Op.Node = G.nodeForRecord(I);
        Op.Event = Rec.targetTask();
        Op.DelayMs = Rec.delayMs();
        Op.AtFront = Rec.Kind == OpKind::SendAtFront;
        QueueSends[Rec.queue().index()].push_back(Op);
      }
    }
  }

  /// Adds the edges that need no derived information.
  void addBaseEdges() {
    Stats.ProgramOrderEdges = G.numEdges();

    // Maps for pairing rules.
    std::vector<std::vector<NodeId>> MonitorNotifies;
    std::vector<std::vector<NodeId>> ListenerRegisters;
    std::unordered_map<uint64_t, NodeId> IpcSends;
    std::vector<NodeId> ExternalBegins; // begin nodes, in begin order

    auto growTo = [](std::vector<std::vector<NodeId>> &V, size_t Index) {
      if (V.size() <= Index)
        V.resize(Index + 1);
    };

    for (uint32_t I = 0, E = static_cast<uint32_t>(T.numRecords()); I != E;
         ++I) {
      const TraceRecord &Rec = T.record(I);
      NodeId Node = G.nodeForRecord(I);
      switch (Rec.Kind) {
      case OpKind::TaskBegin: {
        const TaskInfo &Info = T.taskInfo(Rec.Task);
        if (Opt.Model == OrderingModel::Cafa &&
            Opt.EnableExternalInputRule && Info.External)
          ExternalBegins.push_back(Node);
        break;
      }
      case OpKind::Fork: {
        NodeId ChildBegin = G.beginNode(Rec.targetTask());
        if (ChildBegin.isValid()) {
          G.addEdge(Node, ChildBegin);
          ++Stats.ForkJoinEdges;
        }
        break;
      }
      case OpKind::Join: {
        NodeId ChildEnd = G.endNode(Rec.targetTask());
        if (ChildEnd.isValid()) {
          G.addEdge(ChildEnd, Node);
          ++Stats.ForkJoinEdges;
        }
        break;
      }
      case OpKind::Notify: {
        growTo(MonitorNotifies, Rec.monitor().index());
        MonitorNotifies[Rec.monitor().index()].push_back(Node);
        break;
      }
      case OpKind::Wait: {
        // Signal-and-wait rule: every earlier notify on this monitor
        // happens before this wait.
        if (Rec.monitor().index() < MonitorNotifies.size()) {
          for (NodeId Notify : MonitorNotifies[Rec.monitor().index()]) {
            if (G.taskOfNode(Notify) == Rec.Task)
              continue; // program order already covers it
            G.addEdge(Notify, Node);
            ++Stats.NotifyWaitEdges;
          }
        }
        break;
      }
      case OpKind::RegisterListener: {
        if (Opt.Model == OrderingModel::Cafa && Opt.EnableListenerRule) {
          growTo(ListenerRegisters, Rec.listener().index());
          ListenerRegisters[Rec.listener().index()].push_back(Node);
        }
        break;
      }
      case OpKind::PerformListener: {
        if (Opt.Model == OrderingModel::Cafa && Opt.EnableListenerRule &&
            Rec.listener().index() < ListenerRegisters.size()) {
          for (NodeId Reg : ListenerRegisters[Rec.listener().index()]) {
            G.addEdge(Reg, Node);
            ++Stats.ListenerEdges;
          }
        }
        break;
      }
      case OpKind::Send:
      case OpKind::SendAtFront: {
        NodeId TargetBegin = G.beginNode(Rec.targetTask());
        if (TargetBegin.isValid()) {
          G.addEdge(Node, TargetBegin);
          ++Stats.SendEdges;
        }
        break;
      }
      case OpKind::IpcSend:
        IpcSends[Rec.Arg0] = Node;
        break;
      case OpKind::IpcRecv: {
        auto It = IpcSends.find(Rec.Arg0);
        if (It != IpcSends.end()) {
          G.addEdge(It->second, Node);
          ++Stats.IpcEdges;
        }
        break;
      }
      default:
        break;
      }
    }

    // External input rule: chain externally generated events in the
    // order they began (conservative; Section 3.3).
    for (size_t I = 0; I + 1 < ExternalBegins.size(); ++I) {
      NodeId End = G.endNode(G.taskOfNode(ExternalBegins[I]));
      if (End.isValid()) {
        G.addEdge(End, ExternalBegins[I + 1]);
        ++Stats.ExternalChainEdges;
      }
    }

    // Conventional model: a looper thread's events are totally ordered,
    // as a thread-based detector would assume.
    if (Opt.Model == OrderingModel::Conventional) {
      for (const std::vector<TaskId> &Events : QueueEvents) {
        for (size_t I = 0; I + 1 < Events.size(); ++I) {
          NodeId End = G.endNode(Events[I]);
          NodeId Begin = G.beginNode(Events[I + 1]);
          if (End.isValid() && Begin.isValid()) {
            G.addEdge(End, Begin);
            ++Stats.ConventionalOrderEdges;
          }
        }
      }
    }
  }

  /// One fixpoint round of the atomicity and event-queue rules.
  ///
  /// Pairs are scanned in gap-diagonal order (all adjacent pairs first,
  /// then distance 2, ...) and each round caps the number of edges it
  /// collects.  Both choices fight the same degenerate case: a chain of
  /// k same-delay sends satisfies rule 1 for all k^2/2 pairs, but after
  /// the adjacent edges land and the oracle refreshes, every wider pair
  /// is recognized as implied and skipped.  Without the diagonal order
  /// the first round would insert the quadratic edge set wholesale,
  /// which is sound but ruins both memory and closure time.
  ///
  /// \returns the number of edges added.
  uint64_t applyDerivedRules(const Reachability &Reach) {
    std::vector<std::pair<NodeId, NodeId>> NewEdges;
    uint64_t Atomicity = 0, Q1 = 0, Q2 = 0, Q3 = 0, Q4 = 0;
    const size_t ChunkCap = 4 * G.numNodes() + 1024;

    auto propose = [&](NodeId From, NodeId To, uint64_t &Counter) {
      if (!From.isValid() || !To.isValid())
        return;
      if (Reach.reaches(From, To))
        return; // already implied
      NewEdges.emplace_back(From, To);
      ++Counter;
    };
    auto chunkFull = [&] { return NewEdges.size() >= ChunkCap; };

    if (Opt.EnableAtomicityRule) {
      for (const std::vector<TaskId> &Events : QueueEvents) {
        for (size_t Gap = 1; Gap < Events.size() && !chunkFull(); ++Gap) {
          for (size_t I = 0; I + Gap < Events.size() && !chunkFull();
               ++I) {
            size_t J = I + Gap;
            NodeId BeginI = G.beginNode(Events[I]);
            NodeId EndI = G.endNode(Events[I]);
            NodeId EndJ = G.endNode(Events[J]);
            NodeId BeginJ = G.beginNode(Events[J]);
            if (!BeginI.isValid() || !EndJ.isValid() || !BeginJ.isValid())
              continue;
            // Atomicity: begin(eI) < end(eJ)  =>  end(eI) < begin(eJ).
            if (Reach.reaches(BeginI, EndJ))
              propose(EndI, BeginJ, Atomicity);
          }
        }
      }
    }

    if (Opt.EnableQueueRules) {
      for (const std::vector<SendOp> &Sends : QueueSends) {
        for (size_t Gap = 1; Gap < Sends.size() && !chunkFull(); ++Gap) {
          for (size_t A = 0; A + Gap < Sends.size() && !chunkFull();
               ++A) {
            const SendOp &S1 = Sends[A];
            const SendOp &S2 = Sends[A + Gap];
            // All rules require the sends to be ordered; sends appear in
            // record order so only s1 < s2 (by position) can satisfy it.
            if (!Reach.reaches(S1.Node, S2.Node))
              continue;
            NodeId Begin1 = G.beginNode(S1.Event);
            NodeId Begin2 = G.beginNode(S2.Event);
            NodeId End1 = G.endNode(S1.Event);
            NodeId End2 = G.endNode(S2.Event);
            if (!S1.AtFront && !S2.AtFront) {
              // Rule 1: FIFO among ordered sends when delay1 <= delay2.
              if (S1.DelayMs <= S2.DelayMs)
                propose(End1, Begin2, Q1);
            } else if (!S1.AtFront && S2.AtFront) {
              // Rule 2: the front-enqueued event jumps ahead when it is
              // enqueued before e1 can begin.
              if (Begin1.isValid() && Reach.reaches(S2.Node, Begin1))
                propose(End2, Begin1, Q2);
            } else if (S1.AtFront && !S2.AtFront) {
              // Rule 3: an already-front event precedes later sends.
              propose(End1, Begin2, Q3);
            } else {
              // Rule 4: later front-send jumps ahead of an earlier
              // front-send it provably precedes.
              if (Begin1.isValid() && Reach.reaches(S2.Node, Begin1))
                propose(End2, Begin1, Q4);
            }
          }
        }
      }
    }

    // Apply the batch (dedup first: atomicity and queue rules can derive
    // the same event-level edge).
    std::sort(NewEdges.begin(), NewEdges.end(),
              [](const std::pair<NodeId, NodeId> &X,
                 const std::pair<NodeId, NodeId> &Y) {
                if (X.first != Y.first)
                  return X.first < Y.first;
                return X.second < Y.second;
              });
    NewEdges.erase(std::unique(NewEdges.begin(), NewEdges.end()),
                   NewEdges.end());
    for (auto [From, To] : NewEdges)
      G.addEdge(From, To);

    Stats.AtomicityEdges += Atomicity;
    Stats.QueueRule1Edges += Q1;
    Stats.QueueRule2Edges += Q2;
    Stats.QueueRule3Edges += Q3;
    Stats.QueueRule4Edges += Q4;
    return NewEdges.size();
  }
};

HbIndex::HbIndex(const Trace &T, const TaskIndex &Index,
                 const HbOptions &Options)
    : T(T), Index(Index),
      Graph(std::make_unique<HbGraph>(T, Index)) {
  Builder B(T, *Graph, Options, Stats);
  B.collect();
  B.addBaseEdges();
  Reach = makeReachability(*Graph, Options.Reach == ReachMode::Closure);

  if (Options.Model == OrderingModel::Cafa &&
      (Options.EnableAtomicityRule || Options.EnableQueueRules)) {
    for (uint32_t Round = 0; Round != Options.MaxFixpointRounds; ++Round) {
      ++Stats.FixpointRounds;
      if (B.applyDerivedRules(*Reach) == 0)
        break;
      Reach->refresh();
    }
  }
}

HbIndex::~HbIndex() = default;

bool HbIndex::happensBefore(uint32_t A, uint32_t B) const {
  if (A == B)
    return false;
  const TraceRecord &RecA = T.record(A);
  const TraceRecord &RecB = T.record(B);
  if (RecA.Task == RecB.Task)
    return Index.localIndexOf(A) < Index.localIndexOf(B);
  NodeId P = Graph->firstNodeAtOrAfter(A);
  NodeId Q = Graph->lastNodeAtOrBefore(B);
  if (!P.isValid() || !Q.isValid())
    return false;
  return Reach->reaches(P, Q);
}

bool HbIndex::taskOrdered(TaskId E1, TaskId E2) const {
  if (E1 == E2)
    return false;
  NodeId End1 = Graph->endNode(E1);
  NodeId Begin2 = Graph->beginNode(E2);
  if (!End1.isValid() || !Begin2.isValid())
    return false;
  return Reach->reaches(End1, Begin2);
}

size_t HbIndex::memoryBytes() const {
  size_t Adj = 0;
  for (uint32_t I = 0, E = static_cast<uint32_t>(Graph->numNodes()); I != E;
       ++I)
    Adj += Graph->successors(NodeId(I)).capacity() * 4;
  return Adj + Reach->memoryBytes();
}
