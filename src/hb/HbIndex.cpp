//===- hb/HbIndex.cpp - The CAFA causality model ----------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "hb/HbIndex.h"

#include "support/WorkerPool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

using namespace cafa;

namespace {

/// One send/sendAtFront operation targeting a queue.
struct SendOp {
  NodeId Node;
  TaskId Event;
  uint64_t DelayMs;
  bool AtFront;
};

} // namespace

/// Performs the rule evaluation for one HbIndex.
struct HbIndex::Builder {
  const Trace &T;
  HbGraph &G;
  const HbOptions &Opt;
  HbRuleStats &Stats;

  /// Events per queue in observed execution (begin-record) order.
  std::vector<std::vector<TaskId>> QueueEvents;
  /// Send operations per queue in record order.
  std::vector<std::vector<SendOp>> QueueSends;

  Builder(const Trace &T, HbGraph &G, const HbOptions &Opt,
          HbRuleStats &Stats)
      : T(T), G(G), Opt(Opt), Stats(Stats),
        QueueEvents(T.numQueues()), QueueSends(T.numQueues()) {}

  void collect() {
    for (uint32_t I = 0, E = static_cast<uint32_t>(T.numRecords()); I != E;
         ++I) {
      const TraceRecord &Rec = T.record(I);
      if (Rec.Kind == OpKind::TaskBegin) {
        const TaskInfo &Info = T.taskInfo(Rec.Task);
        if (Info.Kind == TaskKind::Event && Info.Queue.isValid())
          QueueEvents[Info.Queue.index()].push_back(Rec.Task);
        continue;
      }
      if (Rec.Kind == OpKind::Send || Rec.Kind == OpKind::SendAtFront) {
        SendOp Op;
        Op.Node = G.nodeForRecord(I);
        Op.Event = Rec.targetTask();
        Op.DelayMs = Rec.delayMs();
        Op.AtFront = Rec.Kind == OpKind::SendAtFront;
        QueueSends[Rec.queue().index()].push_back(Op);
      }
    }
  }

  /// Adds the edges that need no derived information.
  void addBaseEdges() {
    Stats.ProgramOrderEdges = G.numEdges();

    // Maps for pairing rules.
    std::vector<std::vector<NodeId>> MonitorNotifies;
    std::vector<std::vector<NodeId>> ListenerRegisters;
    std::unordered_map<uint64_t, NodeId> IpcSends;
    std::vector<NodeId> ExternalBegins; // begin nodes, in begin order

    auto growTo = [](std::vector<std::vector<NodeId>> &V, size_t Index) {
      if (V.size() <= Index)
        V.resize(Index + 1);
    };

    for (uint32_t I = 0, E = static_cast<uint32_t>(T.numRecords()); I != E;
         ++I) {
      const TraceRecord &Rec = T.record(I);
      NodeId Node = G.nodeForRecord(I);
      switch (Rec.Kind) {
      case OpKind::TaskBegin: {
        const TaskInfo &Info = T.taskInfo(Rec.Task);
        if (Opt.Model == OrderingModel::Cafa &&
            Opt.EnableExternalInputRule && Info.External)
          ExternalBegins.push_back(Node);
        break;
      }
      case OpKind::Fork: {
        NodeId ChildBegin = G.beginNode(Rec.targetTask());
        if (ChildBegin.isValid()) {
          G.addEdge(Node, ChildBegin);
          ++Stats.ForkJoinEdges;
        }
        break;
      }
      case OpKind::Join: {
        NodeId ChildEnd = G.endNode(Rec.targetTask());
        if (ChildEnd.isValid()) {
          G.addEdge(ChildEnd, Node);
          ++Stats.ForkJoinEdges;
        }
        break;
      }
      case OpKind::Notify: {
        growTo(MonitorNotifies, Rec.monitor().index());
        MonitorNotifies[Rec.monitor().index()].push_back(Node);
        break;
      }
      case OpKind::Wait: {
        // Signal-and-wait rule: every earlier notify on this monitor
        // happens before this wait.
        if (Rec.monitor().index() < MonitorNotifies.size()) {
          for (NodeId Notify : MonitorNotifies[Rec.monitor().index()]) {
            if (G.taskOfNode(Notify) == Rec.Task)
              continue; // program order already covers it
            G.addEdge(Notify, Node);
            ++Stats.NotifyWaitEdges;
          }
        }
        break;
      }
      case OpKind::RegisterListener: {
        if (Opt.Model == OrderingModel::Cafa && Opt.EnableListenerRule) {
          growTo(ListenerRegisters, Rec.listener().index());
          ListenerRegisters[Rec.listener().index()].push_back(Node);
        }
        break;
      }
      case OpKind::PerformListener: {
        if (Opt.Model == OrderingModel::Cafa && Opt.EnableListenerRule &&
            Rec.listener().index() < ListenerRegisters.size()) {
          for (NodeId Reg : ListenerRegisters[Rec.listener().index()]) {
            G.addEdge(Reg, Node);
            ++Stats.ListenerEdges;
          }
        }
        break;
      }
      case OpKind::Send:
      case OpKind::SendAtFront: {
        NodeId TargetBegin = G.beginNode(Rec.targetTask());
        if (TargetBegin.isValid()) {
          G.addEdge(Node, TargetBegin);
          ++Stats.SendEdges;
        }
        break;
      }
      case OpKind::IpcSend:
        IpcSends[Rec.Arg0] = Node;
        break;
      case OpKind::IpcRecv: {
        auto It = IpcSends.find(Rec.Arg0);
        if (It != IpcSends.end()) {
          G.addEdge(It->second, Node);
          ++Stats.IpcEdges;
        }
        break;
      }
      default:
        break;
      }
    }

    // External input rule: chain externally generated events in the
    // order they began (conservative; Section 3.3).
    for (size_t I = 0; I + 1 < ExternalBegins.size(); ++I) {
      NodeId End = G.endNode(G.taskOfNode(ExternalBegins[I]));
      if (End.isValid()) {
        G.addEdge(End, ExternalBegins[I + 1]);
        ++Stats.ExternalChainEdges;
      }
    }

    // Conventional model: a looper thread's events are totally ordered,
    // as a thread-based detector would assume.
    if (Opt.Model == OrderingModel::Conventional) {
      for (const std::vector<TaskId> &Events : QueueEvents) {
        for (size_t I = 0; I + 1 < Events.size(); ++I) {
          NodeId End = G.endNode(Events[I]);
          NodeId Begin = G.beginNode(Events[I + 1]);
          if (End.isValid() && Begin.isValid()) {
            G.addEdge(End, Begin);
            ++Stats.ConventionalOrderEdges;
          }
        }
      }
    }
  }

  uint64_t VisitAtom = 0, SkipAtom = 0, VisitSend = 0, SkipSend = 0;

  /// Worker pool for the parallel analysis mode (HbOptions::Threads),
  /// lent by HbIndex; nullptr or zero helpers means sequential rounds.
  WorkerPool *Pool = nullptr;

  /// Per-round frozen context: the oracle (and its inline row array),
  /// the row-level change flags, and whether exact gained facts drive
  /// this round.  Frozen for the whole round -- scans only read it --
  /// which is what makes the per-queue scans safe to run concurrently.
  const Reachability *RoundOracle = nullptr;
  const BitVec *RoundRows = nullptr;
  const uint8_t *RoundChanged = nullptr;
  bool RoundExact = false;

  /// Output and scratch of one scan unit (a dispatch chunk or one
  /// queue's pair scan).  Parallel rounds give every unit its own
  /// ScanOut and merge them in canonical order, so the committed
  /// proposal stream, counters, and cursors never depend on which
  /// thread ran what.  Covered[i] marks an adjacent conclusion
  /// end(i) -> begin(i+1) that holds in the oracle or in this round's
  /// proposals; Run[i] counts consecutive covered links starting at i.
  struct ScanOut {
    std::vector<std::pair<NodeId, NodeId>> Edges;
    uint64_t Atomicity = 0, Q1 = 0, Q2 = 0, Q3 = 0, Q4 = 0;
    uint64_t VisitAtom = 0, SkipAtom = 0, VisitSend = 0, SkipSend = 0;
    std::vector<uint8_t> Covered;
    std::vector<uint32_t> Run;
  };

  /// Semi-naive scan frontier, one per queue and rule family.  Pairs are
  /// scanned in gap-diagonal order; everything lexicographically below
  /// (Gap, I) has been evaluated at least once ("seen") in an earlier
  /// round.  Seen pairs are re-evaluated only when a premise-source row
  /// changed in the last oracle update; unseen pairs always evaluate and
  /// are the only place the per-round edge cap may cut the scan, so the
  /// seen region's sweep always completes -- the invariant that makes
  /// the change-driven skip sound.  The cursor type lives in HbIndex.h
  /// (HbScanCursor) because checkpoints persist these frontiers.
  std::vector<HbScanCursor> AtomCursor, SendCursor;

  /// Reverse maps from a node id to its role in the rule premises, so a
  /// gained reachability fact (From now reaches To) can be dispatched to
  /// exactly the rule instances it can newly fire.  Premises are:
  ///   atomicity   begin(eI) < end(eJ)    Begin source, End target
  ///   queue 1..4  s1 < s2 (post nodes)   Send source and target
  ///   queue 2/4   s2 < begin(e1)         Send source, Begin target
  /// FactSources/FactTargets are those same sets as masks, installed
  /// into the oracle as its gained-fact filter.
  struct NodeRole {
    enum Kind : uint8_t { None, Begin, End, Send } K = None;
    uint32_t Q = 0;   ///< queue index
    uint32_t Pos = 0; ///< position in QueueEvents[Q] / QueueSends[Q]
    /// For Begin nodes: the send that posted this event (as a position
    /// in QueueSends[SendQ]), or SendQ == UINT32_MAX if none recorded.
    uint32_t SendQ = UINT32_MAX;
    uint32_t SendPos = 0;
  };
  std::vector<NodeRole> Roles;
  BitVec FactSources, FactTargets;

  /// Fills Roles and the fact filter masks.  Call after collect() and
  /// addBaseEdges(), once the graph's node universe is final.
  void buildFactTables() {
    size_t N = G.numNodes();
    Roles.assign(N, {});
    FactSources.resize(N);
    FactTargets.resize(N);
    for (size_t Q = 0; Q != QueueEvents.size(); ++Q) {
      const std::vector<TaskId> &Events = QueueEvents[Q];
      if (Events.size() < 2)
        continue; // no pairs, no premises
      for (size_t Pos = 0; Pos != Events.size(); ++Pos) {
        NodeId B = G.beginNode(Events[Pos]);
        NodeId E = G.endNode(Events[Pos]);
        if (B.isValid()) {
          NodeRole &R = Roles[B.index()];
          R.K = NodeRole::Begin;
          R.Q = static_cast<uint32_t>(Q);
          R.Pos = static_cast<uint32_t>(Pos);
          FactSources.set(B.index());
        }
        if (E.isValid()) {
          NodeRole &R = Roles[E.index()];
          R.K = NodeRole::End;
          R.Q = static_cast<uint32_t>(Q);
          R.Pos = static_cast<uint32_t>(Pos);
          FactTargets.set(E.index());
        }
      }
    }
    for (size_t Q = 0; Q != QueueSends.size(); ++Q) {
      const std::vector<SendOp> &Sends = QueueSends[Q];
      if (Sends.size() < 2)
        continue;
      for (size_t Pos = 0; Pos != Sends.size(); ++Pos) {
        const SendOp &S = Sends[Pos];
        if (S.Node.isValid()) {
          NodeRole &R = Roles[S.Node.index()];
          R.K = NodeRole::Send;
          R.Q = static_cast<uint32_t>(Q);
          R.Pos = static_cast<uint32_t>(Pos);
          FactSources.set(S.Node.index());
          FactTargets.set(S.Node.index());
        }
        NodeId B = G.beginNode(S.Event);
        if (B.isValid()) {
          // Rules 2/4 premise target: this event's begin node, reached
          // from a later front-send's post node.
          Roles[B.index()].SendQ = static_cast<uint32_t>(Q);
          Roles[B.index()].SendPos = static_cast<uint32_t>(Pos);
          FactTargets.set(B.index());
        }
      }
    }
  }

  /// One fixpoint round of the atomicity and event-queue rules.
  ///
  /// Pairs are scanned in gap-diagonal order (all adjacent pairs first,
  /// then distance 2, ...) and each round caps the number of edges it
  /// collects.  Both choices fight the same degenerate case: a chain of
  /// k same-delay sends satisfies rule 1 for all k^2/2 pairs, but only
  /// the k-1 adjacent edges carry information -- every wider pair is
  /// implied by chaining them through program order.
  ///
  /// The chain structure is also what lets the scan prune: gap 1
  /// records which adjacent conclusions are *covered* (already implied,
  /// or proposed into this round's batch), and a wider pair whose whole
  /// window is covered is skipped without a query -- its conclusion is
  /// implied by the covered links, so proposing it would either be
  /// rejected or insert a redundant edge.
  ///
  /// On top of that, rounds after the first are *semi-naive* when the
  /// oracle reports deltas:
  ///
  ///  - \p Gained (exact mode) lists the premise-shaped reachability
  ///    facts that became true in the last update.  Each fact is
  ///    dispatched through Roles to the rule instances it can newly
  ///    fire, and the already-seen region of every scan is skipped
  ///    entirely -- a seen pair either fired when its premise first
  ///    appeared (its conclusion is in the graph and propose() drops it
  ///    as implied) or its premise has still never held.  Steady-state
  ///    round cost collapses from quadratic pair re-scans to the
  ///    dispatch of a shrinking fact list.
  ///  - \p ChangedRows (coarse mode, when only row-level dirt is known)
  ///    keeps the scans but skips seen pairs whose premise-source rows
  ///    did not grow.
  ///  - nullptr for both (rebuild-based closure, BFS) re-scans
  ///    everything -- a from-scratch oracle cannot say what changed,
  ///    which is precisely the engine gap bench/offline_scaling
  ///    measures.
  ///
  /// Every skip is of a pair that provably proposes nothing new, so the
  /// fixpoint -- and therefore every report -- is identical across
  /// oracles; only time and memory differ.
  ///
  /// \returns the edges added this round (already inserted into the
  /// graph), for the oracle's delta path.
  // -- Scan primitives ---------------------------------------------------
  // The historical sequential scan's lambdas, hoisted to members so the
  // parallel mode can run the same code against per-task ScanOut
  // buffers.  All of them read only the frozen round context and the
  // pre-round cursors; the only mutation is into the ScanOut (and, for
  // capped scans, a cursor write on a cap cut -- capped scans only ever
  // run sequentially).

  bool reaches(NodeId From, NodeId To) const {
    // Pair scans issue millions of queries per round; closure-backed
    // oracles expose their rows so the hot path is an inline bit test.
    return RoundRows ? RoundRows[From.index()].test(To.index())
                     : RoundOracle->reaches(From, To);
  }

  /// Did this node's reachable set grow in the last oracle update?
  /// Conservative on nullptr (no delta information) and invalid nodes.
  bool rowChanged(NodeId Node) const {
    return !RoundChanged || !Node.isValid() || RoundChanged[Node.index()];
  }

  void propose(ScanOut &Out, NodeId From, NodeId To,
               uint64_t &Counter) const {
    if (!From.isValid() || !To.isValid())
      return;
    if (reaches(From, To))
      return; // already implied
    Out.Edges.emplace_back(From, To);
    ++Counter;
  }

  // Run[i] = number of consecutive covered links starting at link i;
  // a window of Gap covered links implies the wide conclusion
  // end(i) -> begin(i+Gap) by chaining through program order.
  static void computeRuns(ScanOut &Out, size_t K) {
    Out.Run.assign(K - 1, 0);
    for (size_t I = K - 1; I-- > 0;)
      Out.Run[I] =
          Out.Covered[I] ? (I + 1 < K - 1 ? Out.Run[I + 1] : 0) + 1 : 0;
  }

  /// Evaluates one ordered send pair against queue rules 1-4; the
  /// returned Link tells whether the forward conclusion
  /// end(e1) -> begin(e2) is covered afterwards.  Only adjacent pairs
  /// need it (WantLink), so other callers skip its query.
  bool evalSendPair(ScanOut &Out, const SendOp &S1, const SendOp &S2,
                    bool WantLink) const {
    NodeId Begin1 = G.beginNode(S1.Event);
    NodeId Begin2 = G.beginNode(S2.Event);
    NodeId End1 = G.endNode(S1.Event);
    NodeId End2 = G.endNode(S2.Event);
    bool Link = WantLink && End1.isValid() && Begin2.isValid() &&
                reaches(End1, Begin2);
    // All rules require the sends to be ordered; sends appear in
    // record order so only s1 < s2 (by position) can satisfy it.
    if (!reaches(S1.Node, S2.Node))
      return Link;
    if (!S1.AtFront && !S2.AtFront) {
      // Rule 1: FIFO among ordered sends when delay1 <= delay2.
      if (S1.DelayMs <= S2.DelayMs) {
        propose(Out, End1, Begin2, Out.Q1);
        Link |= End1.isValid() && Begin2.isValid();
      }
    } else if (!S1.AtFront && S2.AtFront) {
      // Rule 2: the front-enqueued event jumps ahead when it is
      // enqueued before e1 can begin.
      if (Begin1.isValid() && reaches(S2.Node, Begin1))
        propose(Out, End2, Begin1, Out.Q2);
    } else if (S1.AtFront && !S2.AtFront) {
      // Rule 3: an already-front event precedes later sends.
      propose(Out, End1, Begin2, Out.Q3);
      Link |= End1.isValid() && Begin2.isValid();
    } else {
      // Rule 4: later front-send jumps ahead of an earlier
      // front-send it provably precedes.
      if (Begin1.isValid() && reaches(S2.Node, Begin1))
        propose(Out, End2, Begin1, Out.Q4);
    }
    return Link;
  }

  /// Was the pair at (Gap, I) of a queue with K elements evaluated in
  /// an earlier round?  Unseen pairs are skipped by the dispatch below
  /// -- the resumed scan reaches them with an oracle that still holds
  /// the fact (monotone), so nothing is lost.
  static bool pairSeen(const HbScanCursor &C, size_t K, uint32_t Gap,
                       uint32_t I) {
    if (C.Gap >= K)
      return true; // queue fully scanned at least once
    if (Gap < 2)
      return false; // the gap-1 pass still re-evaluates these
    return Gap < C.Gap || (Gap == C.Gap && I < C.I);
  }

  /// Semi-naive dispatch over GainedList[Lo, Hi): route every premise
  /// fact that appeared in the last oracle update to the already-seen
  /// rule instances it can newly fire.  This stands in for re-scanning
  /// the seen region of every queue.  Never capped (its volume is the
  /// fact delta, not a pair quadratic), so parallel chunks of it commit
  /// unconditionally.
  void dispatchGained(const std::vector<GainedWord> &GainedList, size_t Lo,
                      size_t Hi, ScanOut &Out) const {
    for (size_t GI = Lo; GI != Hi; ++GI) {
      const GainedWord &GW = GainedList[GI];
      const NodeRole &U = Roles[GW.From];
      if (U.K == NodeRole::None)
        continue;
      for (uint64_t Bits = GW.Bits; Bits; Bits &= Bits - 1) {
        uint32_t V =
            GW.WordIdx * 64 + static_cast<uint32_t>(__builtin_ctzll(Bits));
        const NodeRole &VR = Roles[V];
        if (U.K == NodeRole::Begin) {
          // Atomicity premise begin(eI) < end(eJ) just became true.
          if (Opt.EnableAtomicityRule && VR.K == NodeRole::End &&
              VR.Q == U.Q && VR.Pos > U.Pos &&
              pairSeen(AtomCursor[U.Q], QueueEvents[U.Q].size(),
                       VR.Pos - U.Pos, U.Pos)) {
            ++Out.VisitAtom;
            const std::vector<TaskId> &Events = QueueEvents[U.Q];
            propose(Out, G.endNode(Events[U.Pos]),
                    G.beginNode(Events[VR.Pos]), Out.Atomicity);
          }
        } else if (U.K == NodeRole::Send && Opt.EnableQueueRules) {
          // Queue-rule premise s1 < s2 just became true.
          if (VR.K == NodeRole::Send && VR.Q == U.Q && VR.Pos > U.Pos &&
              pairSeen(SendCursor[U.Q], QueueSends[U.Q].size(),
                       VR.Pos - U.Pos, U.Pos)) {
            ++Out.VisitSend;
            evalSendPair(Out, QueueSends[U.Q][U.Pos],
                         QueueSends[U.Q][VR.Pos],
                         /*WantLink=*/false);
          }
          // Rules 2/4 premise s2 < begin(e1) just became true, where
          // e1 was posted by an earlier send of the same queue.
          if (VR.SendQ == U.Q && U.Pos > VR.SendPos &&
              pairSeen(SendCursor[U.Q], QueueSends[U.Q].size(),
                       U.Pos - VR.SendPos, VR.SendPos)) {
            ++Out.VisitSend;
            evalSendPair(Out, QueueSends[U.Q][VR.SendPos],
                         QueueSends[U.Q][U.Pos],
                         /*WantLink=*/false);
          }
        }
      }
    }
  }

  /// One atomicity queue's gap-diagonal scan into \p Out.  \p Cap is
  /// the per-round edge cap, compared against Out.Edges.size() (the
  /// caller passes the round-global accumulator in capped mode); 0
  /// disables it, which is how the optimistic parallel mode runs --
  /// the commit step proves the cap could not have fired, or re-runs
  /// capped.  \returns true when the scan completed (the caller then
  /// marks the queue fully seen); a cap cut stores the cursor itself.
  bool scanAtomQueue(size_t Qi, ScanOut &Out, size_t Cap) {
    const std::vector<TaskId> &Events = QueueEvents[Qi];
    const size_t K = Events.size();
    auto chunkFull = [&] { return Cap && Out.Edges.size() >= Cap; };
    // Gap 1: evaluate adjacent pairs and record the covered links.
    // Runs in full every round (linear, and Covered must be fresh);
    // a cap cut here leaves the tail uncovered, which is safe.
    Out.Covered.assign(K - 1, 0);
    for (size_t I = 0; I + 1 < K && !chunkFull(); ++I) {
      NodeId BeginI = G.beginNode(Events[I]);
      NodeId EndI = G.endNode(Events[I]);
      NodeId EndJ = G.endNode(Events[I + 1]);
      NodeId BeginJ = G.beginNode(Events[I + 1]);
      bool Link =
          EndI.isValid() && BeginJ.isValid() && reaches(EndI, BeginJ);
      if (BeginI.isValid() && EndJ.isValid() && BeginJ.isValid() &&
          reaches(BeginI, EndJ)) {
        // Atomicity: begin(eI) < end(eJ)  =>  end(eI) < begin(eJ).
        propose(Out, EndI, BeginJ, Out.Atomicity);
        Link |= EndI.isValid(); // implied before, or in the batch now
      }
      Out.Covered[I] = Link;
    }
    computeRuns(Out, K);
    if (K >= 2 && Out.Run[0] == K - 1)
      // Every wider conclusion is implied by the covered chain, now
      // and forever (edges are never removed) -- the whole queue
      // counts as seen.
      return true;
    // With exact fact dispatch the seen region needs no re-scan at
    // all -- resume where the cap last cut.  Otherwise walk it with
    // the coarse row-level skip.
    const size_t CGap = AtomCursor[Qi].Gap, CI = AtomCursor[Qi].I;
    for (size_t Gap = RoundExact ? CGap : 2; Gap < K; ++Gap) {
      for (size_t I = (RoundExact && Gap == CGap) ? CI : 0; I + Gap < K;
           ++I) {
        if (Out.Run[I] >= Gap) {
          ++Out.SkipAtom;
          continue; // conclusion implied by chained covered links
        }
        size_t J = I + Gap;
        NodeId BeginI = G.beginNode(Events[I]);
        bool Seen = !RoundExact && (Gap < CGap || (Gap == CGap && I < CI));
        if (Seen) {
          // The only premise query sources from begin(eI); if its
          // row did not grow, the pair evaluates as it did before.
          if (!rowChanged(BeginI)) {
            ++Out.SkipAtom;
            continue;
          }
        } else if (chunkFull()) {
          // Everything past the cursor stays unseen.
          AtomCursor[Qi] = {static_cast<uint32_t>(Gap),
                            static_cast<uint32_t>(I)};
          return false;
        }
        ++Out.VisitAtom;
        NodeId EndI = G.endNode(Events[I]);
        NodeId EndJ = G.endNode(Events[J]);
        NodeId BeginJ = G.beginNode(Events[J]);
        if (!BeginI.isValid() || !EndJ.isValid() || !BeginJ.isValid())
          continue;
        // Atomicity: begin(eI) < end(eJ)  =>  end(eI) < begin(eJ).
        if (reaches(BeginI, EndJ))
          propose(Out, EndI, BeginJ, Out.Atomicity);
      }
    }
    return true;
  }

  /// One send queue's gap-diagonal scan into \p Out; same cap and
  /// return contract as scanAtomQueue.
  bool scanSendQueue(size_t Qi, ScanOut &Out, size_t Cap) {
    const std::vector<SendOp> &Sends = QueueSends[Qi];
    const size_t K = Sends.size();
    auto chunkFull = [&] { return Cap && Out.Edges.size() >= Cap; };
    // Gap 1: evaluate adjacent pairs and record the covered links.
    Out.Covered.assign(K - 1, 0);
    for (size_t A = 0; A + 1 < K && !chunkFull(); ++A)
      Out.Covered[A] =
          evalSendPair(Out, Sends[A], Sends[A + 1], /*WantLink=*/true);
    computeRuns(Out, K);
    if (K >= 2 && Out.Run[0] == K - 1) {
      // Every wider rule-1/3 conclusion is implied by the covered
      // chain, and the reverse-direction rules 2/4 need a
      // front-enqueued s2.  A queue with no front sends is therefore
      // fully implied, now and forever (edges are never removed, and
      // AtFront is a static property of the send) -- without this the
      // gap loop below walks K^2/2 pairs just to skip each one, which
      // is the quadratic wall on long single-poster queues.
      bool AnyFront = false;
      for (const SendOp &S : Sends)
        AnyFront |= S.AtFront;
      if (!AnyFront)
        return true;
    }
    const size_t CGap = SendCursor[Qi].Gap, CI = SendCursor[Qi].I;
    for (size_t Gap = RoundExact ? CGap : 2; Gap < K; ++Gap) {
      for (size_t A = (RoundExact && Gap == CGap) ? CI : 0; A + Gap < K;
           ++A) {
        const SendOp &S1 = Sends[A];
        const SendOp &S2 = Sends[A + Gap];
        // A covered window implies the forward conclusion of rules
        // 1 and 3; only a front-enqueued s2 (rules 2 and 4, reverse
        // conclusion) still needs evaluating.
        if (Out.Run[A] >= Gap && !S2.AtFront) {
          ++Out.SkipSend;
          continue;
        }
        bool Seen = !RoundExact && (Gap < CGap || (Gap == CGap && A < CI));
        if (Seen) {
          // Every premise query sources from s1's or s2's post node;
          // if neither row grew, the pair evaluates as before.
          if (!rowChanged(S1.Node) && !rowChanged(S2.Node)) {
            ++Out.SkipSend;
            continue;
          }
        } else if (chunkFull()) {
          // Everything past the cursor stays unseen.
          SendCursor[Qi] = {static_cast<uint32_t>(Gap),
                            static_cast<uint32_t>(A)};
          return false;
        }
        ++Out.VisitSend;
        evalSendPair(Out, S1, S2, /*WantLink=*/false);
      }
    }
    return true;
  }

  std::vector<HbEdge>
  applyDerivedRules(const Reachability &Oracle, const uint8_t *ChangedRows,
                    const std::vector<GainedWord> *Gained) {
    // Keep rounds small: the incremental oracle makes a round-boundary
    // refresh cheap, and the sooner the oracle reflects a chain's
    // adjacent edges, the more wide-gap pairs the next scan skips as
    // implied -- tighter rounds insert strictly fewer redundant edges.
    const size_t ChunkCap = G.numNodes() / 8 + 1024;

    // Freeze the round context.  Scans only read it (plus the pre-round
    // cursors), which is what makes per-queue scans independent: each
    // queue's proposal stream depends on the frozen oracle and its own
    // cursor only, never on another queue's proposals in this round.
    RoundOracle = &Oracle;
    RoundRows = Oracle.rowsOrNull();
    RoundChanged = ChangedRows;
    RoundExact = Gained != nullptr;
    if (Opt.EnableAtomicityRule && AtomCursor.size() != QueueEvents.size())
      AtomCursor.assign(QueueEvents.size(), {});
    if (Opt.EnableQueueRules && SendCursor.size() != QueueSends.size())
      SendCursor.assign(QueueSends.size(), {});

    // A queue participates this round unless exact fact dispatch covers
    // it (fully seen).
    auto runsAtom = [&](size_t Qi) {
      size_t K = QueueEvents[Qi].size();
      return K >= 2 && !(RoundExact && AtomCursor[Qi].Gap >= K);
    };
    auto runsSend = [&](size_t Qi) {
      size_t K = QueueSends[Qi].size();
      return K >= 2 && !(RoundExact && SendCursor[Qi].Gap >= K);
    };
    auto mergeScan = [](ScanOut &Dst, const ScanOut &Src) {
      Dst.Edges.insert(Dst.Edges.end(), Src.Edges.begin(), Src.Edges.end());
      Dst.Atomicity += Src.Atomicity;
      Dst.Q1 += Src.Q1;
      Dst.Q2 += Src.Q2;
      Dst.Q3 += Src.Q3;
      Dst.Q4 += Src.Q4;
      Dst.VisitAtom += Src.VisitAtom;
      Dst.SkipAtom += Src.SkipAtom;
      Dst.VisitSend += Src.VisitSend;
      Dst.SkipSend += Src.SkipSend;
    };

    // Main accumulates the round: committed proposals in canonical
    // (dispatch, atom queues ascending, send queues ascending) order --
    // exactly the sequential emission order -- plus the counters.
    ScanOut Main;

    // The parallel mode needs concurrency-safe queries:
    // Reachability::reaches may mutate per-oracle scratch (BFS, and the
    // chain oracle's search phase), so only oracles answering from
    // immutable state -- closure rows or frozen chain clocks -- are safe
    // to query from many threads.
    bool Parallel = Pool && Pool->helperThreads() > 0 &&
                    (RoundRows || RoundOracle->concurrentQueriesSafe());
    if (!Parallel) {
      if (Gained)
        dispatchGained(*Gained, 0, Gained->size(), Main);
      if (Opt.EnableAtomicityRule)
        for (size_t Qi = 0; Qi != QueueEvents.size(); ++Qi)
          if (runsAtom(Qi) && scanAtomQueue(Qi, Main, ChunkCap))
            AtomCursor[Qi] = {static_cast<uint32_t>(QueueEvents[Qi].size()),
                              0};
      if (Opt.EnableQueueRules)
        for (size_t Qi = 0; Qi != QueueSends.size(); ++Qi)
          if (runsSend(Qi) && scanSendQueue(Qi, Main, ChunkCap))
            SendCursor[Qi] = {static_cast<uint32_t>(QueueSends[Qi].size()),
                              0};
    } else {
      // Optimistic parallel round: run every scan unit uncapped and
      // concurrently (cursors are frozen -- nothing writes them until
      // commit), then commit the per-unit buffers sequentially in
      // canonical order.  A queue is accepted verbatim when even its
      // full uncapped output keeps the round strictly under the cap:
      // the capped sequential scan would then never have seen
      // chunkFull() fire, so the buffers are bit-for-bit what it
      // produces.  From the first queue where the cap could have
      // fired, fall back to the real capped sequential scan (the
      // cheap case: the cap only fires while the fixpoint is young).
      enum Kind : uint8_t { Dispatch, Atom, Send };
      struct Unit {
        Kind K;
        size_t Index; // queue index, or dispatch chunk begin
        size_t End;   // dispatch chunk end
        ScanOut Out;
      };
      std::vector<Unit> Units;
      if (Gained && !Gained->empty()) {
        size_t Threads = Pool->helperThreads() + 1;
        size_t Chunk = std::max<size_t>(
            (Gained->size() + Threads - 1) / Threads, 64);
        for (size_t Lo = 0; Lo < Gained->size(); Lo += Chunk)
          Units.push_back(
              {Dispatch, Lo, std::min(Lo + Chunk, Gained->size()), {}});
      }
      if (Opt.EnableAtomicityRule)
        for (size_t Qi = 0; Qi != QueueEvents.size(); ++Qi)
          if (runsAtom(Qi))
            Units.push_back({Atom, Qi, 0, {}});
      if (Opt.EnableQueueRules)
        for (size_t Qi = 0; Qi != QueueSends.size(); ++Qi)
          if (runsSend(Qi))
            Units.push_back({Send, Qi, 0, {}});

      Pool->parallelFor(Units.size(), [&](size_t UI) {
        Unit &U = Units[UI];
        switch (U.K) {
        case Dispatch:
          dispatchGained(*Gained, U.Index, U.End, U.Out);
          break;
        case Atom:
          scanAtomQueue(U.Index, U.Out, /*Cap=*/0);
          break;
        case Send:
          scanSendQueue(U.Index, U.Out, /*Cap=*/0);
          break;
        }
      });

      bool Fallback = false;
      for (Unit &U : Units) {
        if (U.K == Dispatch) {
          // Dispatch has no cap checks; its chunks always commit.
          mergeScan(Main, U.Out);
          continue;
        }
        size_t K = U.K == Atom ? QueueEvents[U.Index].size()
                               : QueueSends[U.Index].size();
        if (!Fallback && Main.Edges.size() + U.Out.Edges.size() < ChunkCap) {
          mergeScan(Main, U.Out);
          (U.K == Atom ? AtomCursor : SendCursor)[U.Index] = {
              static_cast<uint32_t>(K), 0};
          continue;
        }
        Fallback = true;
        if (U.K == Atom) {
          if (scanAtomQueue(U.Index, Main, ChunkCap))
            AtomCursor[U.Index] = {static_cast<uint32_t>(K), 0};
        } else {
          if (scanSendQueue(U.Index, Main, ChunkCap))
            SendCursor[U.Index] = {static_cast<uint32_t>(K), 0};
        }
      }
    }

    VisitAtom += Main.VisitAtom;
    SkipAtom += Main.SkipAtom;
    VisitSend += Main.VisitSend;
    SkipSend += Main.SkipSend;

    // Apply the batch (dedup first: atomicity and queue rules can derive
    // the same event-level edge).
    std::vector<std::pair<NodeId, NodeId>> &NewEdges = Main.Edges;
    std::sort(NewEdges.begin(), NewEdges.end(),
              [](const std::pair<NodeId, NodeId> &X,
                 const std::pair<NodeId, NodeId> &Y) {
                if (X.first != Y.first)
                  return X.first < Y.first;
                return X.second < Y.second;
              });
    NewEdges.erase(std::unique(NewEdges.begin(), NewEdges.end()),
                   NewEdges.end());
    std::vector<HbEdge> Batch;
    Batch.reserve(NewEdges.size());
    // Only edges the graph actually accepted may reach the oracle and
    // the checkpoint frontier: a rejected contradiction (corrupted
    // trace) must neither teach the oracle a fact the graph does not
    // hold nor stall convergence by re-entering the delta every round.
    for (auto [From, To] : NewEdges)
      if (G.addEdge(From, To))
        Batch.push_back({From, To});

    Stats.AtomicityEdges += Main.Atomicity;
    Stats.QueueRule1Edges += Main.Q1;
    Stats.QueueRule2Edges += Main.Q2;
    Stats.QueueRule3Edges += Main.Q3;
    Stats.QueueRule4Edges += Main.Q4;
    return Batch;
  }
};

HbIndex::HbIndex(const Trace &T, const TaskIndex &Index,
                 const HbOptions &Options, const HbCheckpointing *Checkpoint)
    : T(T), Index(Index),
      Graph(std::make_unique<HbGraph>(T, Index)) {
  bool Profile = std::getenv("CAFA_HB_PROFILE") != nullptr;
  auto Now = [] { return std::chrono::steady_clock::now(); };
  auto Ms = [](auto A, auto B) {
    return std::chrono::duration<double, std::milli>(B - A).count();
  };

  auto TGraph = Now();
  // Parallel analysis mode: Threads-1 helpers (the constructing thread
  // participates in every parallelFor), shared by the oracle's
  // column-strip sweeps and the rule engine's queue scans.  Thread
  // count is purely a wall-clock knob; reports stay bit-identical
  // (docs/robustness.md, "Parallel analysis").
  unsigned Threads = resolveAnalysisThreads(Options.Threads);
  Pool = std::make_unique<WorkerPool>(Threads > 1 ? Threads - 1 : 0);

  Builder B(T, *Graph, Options, Stats);
  B.Pool = Pool.get();
  B.collect();
  B.addBaseEdges();

  // Resume path: replay the checkpointed derived edges onto the fresh
  // base graph.  Base construction is deterministic, so after the replay
  // the graph matches the checkpointed run's graph edge for edge; the
  // counters are then restored wholesale (their base components are
  // identical by the same argument).
  const HbFrontier *R = Checkpoint ? Checkpoint->Resume : nullptr;
  if (R) {
    for (const HbEdge &E : R->DerivedEdges)
      Graph->addEdge(E.From, E.To);
    Stats = R->Stats;
    Kept.DerivedEdges = R->DerivedEdges;
  }
  auto TBase = Now();

  // Memory rung of the degradation ladder: build under a byte budget
  // that counts real allocations, stepping to the next-cheaper oracle
  // whenever the measured footprint overruns MemLimitBytes.  All
  // oracles answer reachability queries identically, so a downgrade
  // changes build time and memory but keeps every downstream report
  // bit-identical.  BFS keeps no precomputed state and is the
  // always-accepted floor.  A resume with attached closure rows imports
  // them instead of recomputing the O(N^2/64) sweep.
  ReachMode Mode = resolveReachMode(Options.Reach);
  Degrade.RequestedReach = Mode;
  for (;;) {
    Reach = makeReachability(*Graph, Mode, Options.MemLimitBytes,
                             /*Defer=*/true);
    Reach->setWorkerPool(Pool.get());
    bool Ready = false;
    if (R && !R->ClosureRows.empty())
      Ready = Reach->importClosureRows(R->ClosureRows.data(),
                                       R->ClosureRows.size(), R->RowWords);
    if (!Ready && R && !R->ChainState.empty())
      Ready = Reach->importChainState(R->ChainState.data(),
                                      R->ChainState.size());
    if (!Ready && !Reach->budgetExceeded()) {
      Reach->refresh();
      Ready = !Reach->budgetExceeded();
    }
    if (Ready || Mode == ReachMode::Bfs)
      break;
    Mode = Mode == ReachMode::Incremental ? ReachMode::Closure
           : Mode == ReachMode::Closure   ? ReachMode::Chain
                                          : ReachMode::Bfs;
  }
  Degrade.DowngradedForMemory = Mode != Degrade.RequestedReach;
  Degrade.UsedReach = Mode;
  Degrade.MeasuredReachBytes = Reach->memoryBytes();
  auto TInit = Now();
  if (Profile)
    std::fprintf(stderr, "graph+base=%.1fms init=%.1fms nodes=%zu edges=%zu\n",
                 Ms(TGraph, TBase), Ms(TBase, TInit), Graph->numNodes(),
                 Graph->numEdges());

  // Syncs everything but the edges (which accumulate live) into Kept so
  // exportFrontier() can freeze a consistent snapshot at any boundary.
  auto SyncKept = [&] {
    Kept.UsedReach = Degrade.UsedReach;
    Kept.RoundsDone = Stats.FixpointRounds;
    Kept.Saturated = Converged;
    Kept.Stats = Stats;
    Kept.AtomCursors = B.AtomCursor;
    Kept.SendCursors = B.SendCursor;
    Kept.UnsaturatedRules = Degrade.UnsaturatedRules;
  };

  if (R) {
    // Restore the scan frontiers: pairs the checkpointed run already
    // evaluated are not re-proposed (their conclusions are in the
    // replayed edges).  The first resumed round runs with no delta
    // information (nullptr below), i.e. a conservative full pass over
    // the unseen region -- re-evaluating a seen pair is always sound,
    // it just proposes nothing new.
    if (R->AtomCursors.size() == B.QueueEvents.size())
      B.AtomCursor = R->AtomCursors;
    if (R->SendCursors.size() == B.QueueSends.size())
      B.SendCursor = R->SendCursors;
  }

  Converged = true;
  if (Options.Model == OrderingModel::Cafa &&
      (Options.EnableAtomicityRule || Options.EnableQueueRules) &&
      !(R && R->Saturated)) {
    // Semi-naive evaluation: round 0 scans everything; later rounds ask
    // the oracle what changed -- exact premise facts if it can say
    // (incremental sweep), per-row dirt as the coarse fallback, full
    // re-scans when it rebuilds from scratch and cannot know.
    B.buildFactTables();
    Reach->setFactFilter(B.FactSources, B.FactTargets);
    Converged = false;
    const uint8_t *ChangedRows = nullptr;
    const std::vector<GainedWord> *Gained = nullptr;
    double LastSaveMs = 0;
    uint32_t StartRound = Stats.FixpointRounds;
    for (uint32_t Round = StartRound; Round != Options.MaxFixpointRounds;
         ++Round) {
      // Time rung of the degradation ladder: stop starting rounds past
      // the deadline.  Edges already derived stay -- the relation only
      // ever under-approximates, which can add race candidates
      // downstream but never hides one.
      if (Options.DeadlineMillis > 0 &&
          Ms(TGraph, Now()) > Options.DeadlineMillis) {
        Degrade.DeadlineExceeded = true;
        break;
      }
      ++Stats.FixpointRounds;
      auto T0 = Now();
      std::vector<HbEdge> Delta =
          B.applyDerivedRules(*Reach, ChangedRows, Gained);
      auto T1 = Now();
      if (Delta.empty()) {
        Converged = true;
        if (Profile)
          std::fprintf(stderr,
                       "round %u: empty scan=%.1fms atom=%llu/%llu "
                       "send=%llu/%llu\n",
                       Round, Ms(T0, T1),
                       (unsigned long long)B.VisitAtom,
                       (unsigned long long)B.SkipAtom,
                       (unsigned long long)B.VisitSend,
                       (unsigned long long)B.SkipSend);
        break;
      }
      // Delta protocol: the graph already holds this round's edges; the
      // oracle either folds them in incrementally or rebuilds.
      Reach->addEdges(Delta);
      ChangedRows = Reach->changedRows();
      Gained = Reach->gainedWords();
      Kept.DerivedEdges.insert(Kept.DerivedEdges.end(), Delta.begin(),
                               Delta.end());
      // Cadence checkpoint: the oracle now reflects every inserted edge,
      // so this round boundary is a consistent freeze point.
      if (Checkpoint && Checkpoint->Save && Checkpoint->EveryMillis > 0 &&
          Ms(TGraph, Now()) - LastSaveMs >= Checkpoint->EveryMillis) {
        LastSaveMs = Ms(TGraph, Now());
        SyncKept();
        Checkpoint->Save(exportFrontier());
      }
      auto T2 = Now();
      if (Profile)
        std::fprintf(stderr,
                     "round %u: delta=%zu scan=%.1fms update=%.1fms "
                     "atom=%llu/%llu send=%llu/%llu facts=%zu\n",
                     Round, Delta.size(), Ms(T0, T1), Ms(T1, T2),
                     (unsigned long long)B.VisitAtom,
                     (unsigned long long)B.SkipAtom,
                     (unsigned long long)B.VisitSend,
                     (unsigned long long)B.SkipSend,
                     Gained ? Gained->size() : size_t(0));
    }
    if (!Converged) {
      // The cut relation is missing edges from exactly the rule families
      // the fixpoint was still deriving.
      if (Options.EnableAtomicityRule)
        Degrade.UnsaturatedRules.push_back("atomicity");
      if (Options.EnableQueueRules)
        Degrade.UnsaturatedRules.push_back("event-queue");
      // Deadline cut: always leave a frontier behind so the interrupted
      // work is resumable regardless of cadence.
      if (Checkpoint && Checkpoint->Save) {
        SyncKept();
        Checkpoint->Save(exportFrontier());
      }
    }
  }
  // The chain oracle's footprint and cover evolve across the fixpoint
  // (clocks commit the first round the cover collapses under the cap),
  // so re-measure: degradation() reports the kept oracle's final shape.
  Degrade.MeasuredReachBytes = Reach->memoryBytes();
  Degrade.ChainCount = Reach->chainCount();
  SyncKept();
}

HbIndex::~HbIndex() = default;

HbFrontier HbIndex::exportFrontier() const {
  // Above this, serializing the row matrix costs more than the refresh()
  // it would save on resume; the frontier then carries only edges and
  // cursors.
  constexpr size_t MaxRowBlobBytes = size_t(256) << 20;
  HbFrontier F = Kept;
  std::vector<uint64_t> Words;
  size_t WordsPerRow = 0;
  if (Reach->exportClosureRows(Words, WordsPerRow) &&
      Words.size() * 8 <= MaxRowBlobBytes) {
    F.ClosureRows = std::move(Words);
    F.RowWords = WordsPerRow;
  } else if (Words.clear(), Reach->exportChainState(Words) &&
                                Words.size() * 8 <= MaxRowBlobBytes) {
    // Chain rung: the decomposition + clock matrix plays the closure
    // rows' role (and is far smaller -- O(N * chains) words).
    F.ChainState = std::move(Words);
  }
  return F;
}

bool HbIndex::happensBefore(uint32_t A, uint32_t B) const {
  if (A == B)
    return false;
  const TraceRecord &RecA = T.record(A);
  const TraceRecord &RecB = T.record(B);
  if (RecA.Task == RecB.Task)
    return Index.localIndexOf(A) < Index.localIndexOf(B);
  NodeId P = Graph->firstNodeAtOrAfter(A);
  NodeId Q = Graph->lastNodeAtOrBefore(B);
  if (!P.isValid() || !Q.isValid())
    return false;
  return Reach->reaches(P, Q);
}

bool HbIndex::taskOrdered(TaskId E1, TaskId E2) const {
  if (E1 == E2)
    return false;
  NodeId End1 = Graph->endNode(E1);
  NodeId Begin2 = Graph->beginNode(E2);
  if (!End1.isValid() || !Begin2.isValid())
    return false;
  return Reach->reaches(End1, Begin2);
}

bool HbIndex::concurrentQueriesSafe() const {
  return Reach->concurrentQueriesSafe();
}

void HbIndex::shedOracle() {
  Reach = makeReachability(*Graph, ReachMode::Bfs);
}

size_t HbIndex::memoryBytes() const {
  size_t Adj = 0;
  for (uint32_t I = 0, E = static_cast<uint32_t>(Graph->numNodes()); I != E;
       ++I)
    Adj += Graph->successors(NodeId(I)).capacity() * 4;
  return Adj + Reach->memoryBytes();
}
