//===- confirm/Confirm.h - Race confirmation by controlled replay -*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine triage for predicted use-free races (the paper's Section 7
/// "we manually verified" step, automated): given a race the detector
/// predicted over a scenario-backed trace, synthesize a reordered
/// schedule that dispatches the freeing task before the using task,
/// re-execute the deterministic simulator under that schedule
/// (rt/Runtime.h's ScheduleOverride hook), and label the race by what
/// the replay actually did:
///
///  - *confirmed*: the replay crashed -- threw a null-pointer exception
///    at exactly the dereference site the detector predicted.  The race
///    is real and harmful; no human needs to look at it.
///  - *infeasible*: every free-before-use schedule violates the
///    happens-before relation (the pair is ordered, or same-task), so no
///    legal reordering can produce the crash.  The report row was noise
///    -- typically a provisional race from a deadline-cut relation.
///  - *unconfirmed*: the schedule budget ran out without a crash.  The
///    race stays a prediction; a human (or a bigger budget) decides.
///
/// Verdicts are *evidence-ordered*, not exploration-ordered: confirmed
/// beats infeasible beats unconfirmed (cafa/RaceRecord.h's
/// mergeConfirmVerdicts), and a confirmed verdict is trustworthy by
/// construction -- it is backed by an actual crash at the predicted
/// site, so a mis-resolved schedule pick can waste budget but can never
/// mislabel a false race as confirmed.
///
/// Exploration is bounded partial-order reduction in miniature (after
/// Maiya et al.'s EventRacer-to-replay loop): the primary schedule holds
/// the using task until the freeing task completes; refinement schedules
/// additionally hold interfering allocator tasks (writers that could
/// re-fill the freed cell and mask the crash) until the use has run.
/// Schedules are tried in a deterministic order and the per-race work
/// fans out across a WorkerPool; per-race result slots are merged in
/// race order, so the summary is byte-identical at every thread count.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_CONFIRM_CONFIRM_H
#define CAFA_CONFIRM_CONFIRM_H

#include "cafa/RaceRecord.h"
#include "rt/Runtime.h"

#include <string>
#include <vector>

namespace cafa {

/// Knobs for one confirmation pass.
struct ConfirmOptions {
  /// Schedules tried per race before giving up (the exploration
  /// budget), counting the primary flip.  0 = auto: the CAFA_CONFIRM
  /// environment variable if set, else 4 (request > env > default,
  /// like every other knob; see resolveConfirmBound).
  unsigned MaxSchedules = 0;
  /// Worker threads for the per-race replay fan-out.  0 = auto
  /// (CAFA_ANALYSIS_THREADS, then hardware concurrency).  Any count
  /// produces byte-identical verdicts.
  unsigned Threads = 0;
  /// Base options for the replay runs.  Tracing and stream mirroring
  /// are forced off (replays only need the crash sites); the schedule
  /// override is owned by the explorer.
  RuntimeOptions Rt;
};

/// What confirmation concluded about one race.
struct RaceConfirmation {
  ConfirmVerdict Verdict = ConfirmVerdict::Unconfirmed;
  /// Replays actually executed for this race (0 for infeasible races,
  /// which are decided without running anything).
  unsigned SchedulesTried = 0;
  /// Deterministic human-readable evidence: the crash site and the
  /// schedule that reproduced it, why the pair is infeasible, or why
  /// exploration gave up.
  std::string Detail;
};

/// The whole pass: one entry per race, parallel to RaceReport::Races.
struct ConfirmSummary {
  std::vector<RaceConfirmation> PerRace;
  unsigned Confirmed = 0;
  unsigned Infeasible = 0;
  unsigned Unconfirmed = 0;
  /// Total replay executions across all races.
  uint64_t SchedulesRun = 0;
};

/// Resolves the schedule budget: \p Requested unless 0, else the
/// CAFA_CONFIRM environment variable (positive integers), else 4.
/// Capped at 1024.
unsigned resolveConfirmBound(unsigned Requested);

/// Confirms every race in \p Report by bounded schedule exploration
/// over \p S.  \p T must be the trace \p Report was detected on, and
/// \p S the scenario that produced \p T -- picks naming the racing
/// tasks are computed from \p T's task table and resolved against the
/// replay's creation order, which is why the scenario must match.
///
/// The report is treated as untrusted claims: same-task and
/// happens-before-ordered pairs (checked against a freshly saturated
/// relation) come back infeasible even though the detector normally
/// filters them -- that is exactly the triage needed for provisional
/// races out of deadline-cut partial reports.
ConfirmSummary confirmRaces(const Scenario &S, const Trace &T,
                            const RaceReport &Report,
                            const ConfirmOptions &Options = ConfirmOptions());

/// Stamps \p Summary's verdicts onto \p Doc, which must have been built
/// from the same report (buildRaceDocument keeps race order).
void applyConfirmVerdicts(const ConfirmSummary &Summary, RaceDocument &Doc);

} // namespace cafa

#endif // CAFA_CONFIRM_CONFIRM_H
