//===- confirm/Confirm.cpp - Race confirmation by controlled replay -----------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "confirm/Confirm.h"

#include "detect/Accesses.h"
#include "hb/HbIndex.h"
#include "support/Format.h"
#include "support/Resolve.h"
#include "support/WorkerPool.h"
#include "trace/Trace.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>

using namespace cafa;

unsigned cafa::resolveConfirmBound(unsigned Requested) {
  unsigned Resolved = resolveRequestEnv<unsigned>(
      Requested, 0u, "CAFA_CONFIRM",
      [](const char *Env) -> std::optional<unsigned> {
        char *End = nullptr;
        unsigned long Value = std::strtoul(Env, &End, 10);
        if (End == Env || *End != '\0' || Value == 0)
          return std::nullopt;
        return static_cast<unsigned>(std::min(Value, 1024ul));
      },
      [] { return 4u; });
  return std::min(Resolved, 1024u);
}

namespace {

/// Translates trace task ids into replay TaskPicks.
///
/// The trace task table records each task's entry handler and trace ids
/// equal creation order, so "the Ordinal'th task created with entry E"
/// can be computed here by the same per-entry counting rule the
/// runtime's resolvePicks applies at creation time.  Handlers are
/// matched to module methods *by name*, not by raw id, so a trace
/// serialized and re-read still resolves against the live app model.
///
/// The correspondence assumes the replayed prefix creates same-entry
/// tasks in the trace's relative order.  Externally injected events and
/// boot threads always do (their creation is time-driven, not
/// schedule-driven); tasks spawned by reordered handlers may not, which
/// costs budget but never a wrong confirmation -- a mis-resolved pick
/// either holds nothing (the hold expires at quiescence) or holds a
/// task whose replay then simply fails to crash at the predicted site.
class TaskPicker {
public:
  TaskPicker(const Trace &T, const Module &M) {
    std::map<std::string, MethodId> ByName;
    for (size_t I = 0; I < M.numMethods(); ++I) {
      MethodId Id(static_cast<uint32_t>(I));
      ByName.emplace(M.methodName(Id), Id);
    }
    Picks.resize(T.numTasks());
    Nameable.assign(T.numTasks(), false);
    std::vector<uint32_t> NextOrdinal(M.numMethods(), 0);
    for (size_t I = 0; I < T.numTasks(); ++I) {
      const TaskInfo &Info = T.taskInfo(TaskId(static_cast<uint32_t>(I)));
      if (!Info.Handler.isValid())
        continue;
      auto It = ByName.find(T.methodName(Info.Handler));
      if (It == ByName.end())
        continue;
      MethodId Entry = It->second;
      Picks[I].Entry = Entry;
      Picks[I].Ordinal = NextOrdinal[Entry.index()]++;
      Nameable[I] = true;
    }
  }

  bool pick(TaskId Id, TaskPick &Out) const {
    if (Id.index() >= Picks.size() || !Nameable[Id.index()])
      return false;
    Out = Picks[Id.index()];
    return true;
  }

private:
  std::vector<TaskPick> Picks;
  std::vector<char> Nameable;
};

} // namespace

ConfirmSummary cafa::confirmRaces(const Scenario &S, const Trace &T,
                                  const RaceReport &Report,
                                  const ConfirmOptions &Options) {
  ConfirmSummary Sum;
  const size_t N = Report.Races.size();
  Sum.PerRace.resize(N);
  if (N == 0)
    return Sum;
  const unsigned Budget = resolveConfirmBound(Options.MaxSchedules);

  // Feasibility is judged against a freshly *saturated* relation: the
  // report may carry provisional races from a deadline-cut build, and
  // triaging exactly those into "infeasible" is half the point.
  TaskIndex Index(T);
  HbOptions HbOpts;
  HbIndex Hb(T, Index, HbOpts);

  TaskPicker Picker(T, S.module());
  AccessDb Db = extractAccesses(T, Index);

  // Sequential phase: feasibility verdicts and schedule synthesis.
  // Everything that consults the (not always concurrency-safe) HB
  // oracle happens here; only self-contained replays run in parallel.
  std::vector<size_t> Pending;
  std::vector<std::vector<ScheduleOverride>> Plans(N);
  std::vector<std::string> SiteNames(N);
  std::vector<uint32_t> SitePcs(N);
  for (size_t I = 0; I < N; ++I) {
    const UseFreeRace &Race = Report.Races[I];
    RaceConfirmation &Out = Sum.PerRace[I];
    if (Race.Use.Task == Race.Free.Task) {
      Out.Verdict = ConfirmVerdict::Infeasible;
      Out.Detail = "infeasible: use and free in the same task (program order)";
      continue;
    }
    if (Race.Use.Record < T.numRecords() &&
        Race.Free.Record < T.numRecords() &&
        Hb.ordered(Race.Use.Record, Race.Free.Record)) {
      Out.Verdict = ConfirmVerdict::Infeasible;
      Out.Detail = "infeasible: use and free are happens-before ordered";
      continue;
    }
    TaskPick UsePick, FreePick;
    if (!Picker.pick(Race.Use.Task, UsePick) ||
        !Picker.pick(Race.Free.Task, FreePick)) {
      Out.Detail = "unconfirmed: racing task has no replayable entry pick";
      continue;
    }
    if (Race.Use.DerefRecord >= T.numRecords()) {
      Out.Detail = "unconfirmed: use has no dereference record";
      continue;
    }
    const TraceRecord &Deref = T.record(Race.Use.DerefRecord);
    SiteNames[I] = T.methodName(Deref.Method);
    SitePcs[I] = Deref.Pc;

    // Primary flip: the use waits until the free has run to completion.
    ScheduleOverride Primary;
    Primary.Constraints.push_back({UsePick, FreePick});
    Plans[I].push_back(Primary);

    // POR refinements: a third task that stores a fresh object into the
    // same cell can re-fill it between the free and the held use and
    // mask the crash.  Each refinement additionally holds one such
    // allocator until the use has run; allocators are tried in task-id
    // order so the exploration sequence is deterministic.
    std::vector<uint32_t> Writers;
    for (const PtrAccess &Alloc : Db.Allocs)
      if (Alloc.Var == Race.Use.Var && Alloc.Task != Race.Use.Task &&
          Alloc.Task != Race.Free.Task)
        Writers.push_back(Alloc.Task.index());
    std::sort(Writers.begin(), Writers.end());
    Writers.erase(std::unique(Writers.begin(), Writers.end()),
                  Writers.end());
    for (uint32_t Writer : Writers) {
      if (Plans[I].size() >= Budget)
        break;
      TaskPick WriterPick;
      if (!Picker.pick(TaskId(Writer), WriterPick))
        continue;
      ScheduleOverride Refined = Primary;
      Refined.Constraints.push_back({WriterPick, UsePick});
      Plans[I].push_back(Refined);
    }
    Pending.push_back(I);
  }

  // Parallel phase: replay each pending race's schedules.  Races own
  // disjoint result slots and are merged by index below, so verdicts
  // are byte-identical at every thread count.
  if (!Pending.empty()) {
    unsigned Threads = resolveAnalysisThreads(Options.Threads);
    WorkerPool Pool(Threads > 0 ? Threads - 1 : 0);
    Pool.parallelFor(Pending.size(), [&](size_t J) {
      const size_t I = Pending[J];
      const std::vector<ScheduleOverride> &Schedules = Plans[I];
      RaceConfirmation &Out = Sum.PerRace[I];
      RuntimeOptions ReplayOpts = Options.Rt;
      ReplayOpts.Tracing = false;
      ReplayOpts.MirrorStream = false;
      for (size_t K = 0; K < Schedules.size(); ++K) {
        ReplayOpts.Schedule = Schedules[K];
        Runtime Replay(S, ReplayOpts);
        Status RunStatus = Replay.run();
        ++Out.SchedulesTried;
        if (!RunStatus.ok())
          continue;
        for (const RuntimeStats::NpeSite &Site :
             Replay.stats().NpeSites) {
          if (Site.Pc == SitePcs[I] &&
              S.module().methodName(Site.Method) == SiteNames[I]) {
            Out.Verdict = ConfirmVerdict::Confirmed;
            Out.Detail = formatString(
                "confirmed: crash at %s+%u under schedule %zu/%zu",
                SiteNames[I].c_str(), SitePcs[I], K + 1,
                Schedules.size());
            break;
          }
        }
        if (Out.Verdict == ConfirmVerdict::Confirmed)
          break;
      }
      if (Out.Verdict != ConfirmVerdict::Confirmed)
        Out.Detail = formatString("unconfirmed: no crash in %u schedule(s)",
                                  Out.SchedulesTried);
    });
  }

  for (const RaceConfirmation &Out : Sum.PerRace) {
    Sum.SchedulesRun += Out.SchedulesTried;
    switch (Out.Verdict) {
    case ConfirmVerdict::Confirmed:
      ++Sum.Confirmed;
      break;
    case ConfirmVerdict::Infeasible:
      ++Sum.Infeasible;
      break;
    default:
      ++Sum.Unconfirmed;
      break;
    }
  }
  return Sum;
}

void cafa::applyConfirmVerdicts(const ConfirmSummary &Summary,
                                RaceDocument &Doc) {
  const size_t N = std::min(Summary.PerRace.size(), Doc.Races.size());
  for (size_t I = 0; I < N; ++I)
    Doc.Races[I].Verdict = Summary.PerRace[I].Verdict;
}
