//===- trace/Manifest.cpp - Fleet batch manifest parsing ----------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/Manifest.h"

#include "support/Format.h"

#include <cctype>
#include <fstream>
#include <set>
#include <sstream>

using namespace cafa;

namespace {

bool isIdChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '.' ||
         C == '_' || C == '-';
}

/// Strips directories and the trailing extension from \p Path.
std::string baseNameSansExt(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Base =
      Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  size_t Dot = Base.find_last_of('.');
  if (Dot != std::string::npos && Dot > 0)
    Base = Base.substr(0, Dot);
  return Base;
}

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r");
  return S.substr(B, E - B + 1);
}

} // namespace

std::string cafa::sanitizeJobId(const std::string &Candidate) {
  if (Candidate.empty())
    return "_";
  std::string Out;
  Out.reserve(Candidate.size());
  for (char C : Candidate)
    Out.push_back(isIdChar(C) ? C : '_');
  return Out;
}

std::string cafa::deriveJobId(size_t Index, const std::string &TracePath) {
  return formatString("j%03zu_%s", Index + 1,
                      sanitizeJobId(baseNameSansExt(TracePath)).c_str());
}

Status cafa::parseManifest(const std::string &Text,
                           const std::string &BaseDir,
                           std::vector<ManifestEntry> &Out) {
  Out.clear();
  std::vector<ManifestEntry> Entries;
  std::set<std::string> SeenIds;
  std::istringstream In(Text);
  std::string RawLine;
  size_t LineNo = 0;
  while (std::getline(In, RawLine)) {
    ++LineNo;
    // A trailing "# ..." comments out the rest of the line.
    size_t Hash = RawLine.find('#');
    std::string Line =
        trim(Hash == std::string::npos ? RawLine : RawLine.substr(0, Hash));
    if (Line.empty())
      continue;

    // One token: a trace path.  Two tokens: explicit id, then path.
    // Paths may not contain whitespace (the format is line-oriented and
    // deliberately shell-friendly).
    std::istringstream Tokens(Line);
    std::string First, Second, Extra;
    Tokens >> First >> Second >> Extra;
    if (!Extra.empty())
      return Status::error(formatString(
          "manifest line %zu: expected '<path>' or '<id> <path>', got "
          "extra token '%s'",
          LineNo, Extra.c_str()));

    ManifestEntry Entry;
    if (Second.empty()) {
      Entry.TracePath = First;
      Entry.Id = deriveJobId(Entries.size(), First);
    } else {
      for (char C : First)
        if (!isIdChar(C))
          return Status::error(formatString(
              "manifest line %zu: job id '%s' contains '%c'; ids are "
              "restricted to [A-Za-z0-9._-]",
              LineNo, First.c_str(), C));
      Entry.Id = First;
      Entry.TracePath = Second;
    }
    if (!SeenIds.insert(Entry.Id).second)
      return Status::error(formatString(
          "manifest line %zu: duplicate job id '%s'", LineNo,
          Entry.Id.c_str()));
    if (!BaseDir.empty() && Entry.TracePath[0] != '/')
      Entry.TracePath = BaseDir + "/" + Entry.TracePath;
    Entries.push_back(std::move(Entry));
  }
  Out = std::move(Entries);
  return Status::success();
}

Status cafa::readManifestFile(const std::string &Path,
                              std::vector<ManifestEntry> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Status::error("cannot open manifest " + Path);
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  size_t Slash = Path.find_last_of('/');
  std::string BaseDir =
      Slash == std::string::npos ? "" : Path.substr(0, Slash);
  return parseManifest(Text, BaseDir, Out);
}
