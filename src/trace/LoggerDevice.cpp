//===- trace/LoggerDevice.cpp - In-memory trace sink ----------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/LoggerDevice.h"

#include "trace/TraceIO.h"

using namespace cafa;

namespace {
/// Sink defeating dead-code elimination of the device-write model.
volatile uint32_t DeviceWriteSink = 0;
} // namespace

void LoggerDevice::append(const TraceRecord &Rec) {
  TraceData.append(Rec);
  if (!MirrorToStream)
    return;
  std::string Line = serializeRecordLine(Rec);
  // Model the JNI + kernel copy of the real logger device write.
  uint32_t Checksum = DeviceWriteSink;
  for (uint32_t Pass = 0; Pass != WritePasses; ++Pass)
    for (char C : Line)
      Checksum = Checksum * 131 + static_cast<uint32_t>(C);
  DeviceWriteSink = Checksum;
  Stream += Line;
  Stream += '\n';
  // Cap the mirror buffer so long runs do not exhaust memory; a real
  // logger device drains to ADB or flash, so dropping old bytes models
  // the drain without changing the per-record cost.
  if (Stream.size() > (32u << 20))
    Stream.clear();
}
