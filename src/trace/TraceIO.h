//===- trace/TraceIO.h - Trace text serialization --------------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned line-oriented text serialization of traces.  This plays the
/// role of the paper's logger-device stream read over ADB: the customized
/// runtime writes it during execution, the offline analyzer parses it
/// back.  The format is deliberately simple (one record per line) so that
/// traces can be inspected and diffed by hand.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_TRACE_TRACEIO_H
#define CAFA_TRACE_TRACEIO_H

#include "support/Status.h"
#include "trace/Trace.h"

#include <string>

namespace cafa {

/// Serializes \p T into the v1 text format.
std::string serializeTrace(const Trace &T);

/// Serializes one record as a single line (no trailing newline).  Exposed
/// separately because the logging tracer streams records incrementally.
std::string serializeRecordLine(const TraceRecord &Rec);

/// Writes the serialized trace to \p Path.
Status writeTraceFile(const Trace &T, const std::string &Path);

/// Reads and parses a trace from \p Path.
Status readTraceFile(const std::string &Path, Trace &Out);

} // namespace cafa

#endif // CAFA_TRACE_TRACEIO_H
