//===- trace/Trace.cpp - Execution trace container ------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "support/Format.h"

using namespace cafa;

std::string Trace::taskName(TaskId Id) const {
  if (!Id.isValid() || Id.index() >= TaskTable.size())
    return "<invalid task>";
  const TaskInfo &Info = TaskTable[Id.index()];
  if (Info.Name.isValid())
    return Names.str(Info.Name);
  return formatString("<task %u>", Id.value());
}

std::string Trace::methodName(MethodId Id) const {
  if (!Id.isValid() || Id.index() >= MethodTable.size())
    return "<invalid method>";
  const MethodInfo &Info = MethodTable[Id.index()];
  if (Info.Name.isValid())
    return Names.str(Info.Name);
  return formatString("<method %u>", Id.value());
}

size_t Trace::numEvents() const {
  size_t N = 0;
  for (const TaskInfo &Info : TaskTable)
    if (Info.Kind == TaskKind::Event)
      ++N;
  return N;
}

TaskIndex::TaskIndex(const Trace &T)
    : PerTask(T.numTasks()), LocalIndex(T.numRecords(), 0) {
  const std::vector<TraceRecord> &Records = T.records();
  for (uint32_t I = 0, E = static_cast<uint32_t>(Records.size()); I != E;
       ++I) {
    TaskId Task = Records[I].Task;
    assert(Task.isValid() && Task.index() < PerTask.size() &&
           "record references unknown task");
    std::vector<uint32_t> &List = PerTask[Task.index()];
    LocalIndex[I] = static_cast<uint32_t>(List.size());
    List.push_back(I);
  }
}
