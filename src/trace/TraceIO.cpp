//===- trace/TraceIO.cpp - Trace text serialization -----------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/TraceIO.h"

#include "support/Format.h"
#include "trace/SalvageEngine.h"
#include "trace/TraceTextFormat.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace cafa;
using namespace cafa::tracetext;

std::string cafa::serializeRecordLine(const TraceRecord &Rec) {
  return formatString(
      "rec %u %s %u %u %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64,
      Rec.Task.value(), opKindName(Rec.Kind), idOrSentinel(Rec.Method),
      Rec.Pc, Rec.Arg0, Rec.Arg1, Rec.Arg2, Rec.Time);
}

std::string cafa::serializeTrace(const Trace &T) {
  std::ostringstream OS;
  OS << MagicLine << '\n';

  for (uint32_t I = 0, E = static_cast<uint32_t>(T.numMethods()); I != E;
       ++I) {
    const MethodInfo &M = T.methodInfo(MethodId(I));
    OS << "method " << I << ' '
       << escapeName(M.Name.isValid() ? T.names().str(M.Name) : "-") << ' '
       << M.CodeSize << '\n';
  }
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.numQueues()); I != E;
       ++I) {
    const QueueInfo &Q = T.queueInfo(QueueId(I));
    OS << "queue " << I << ' '
       << escapeName(Q.Name.isValid() ? T.names().str(Q.Name) : "-") << ' '
       << idOrSentinel(Q.Looper) << '\n';
  }
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.numListeners()); I != E;
       ++I) {
    const ListenerInfo &L = T.listenerInfo(ListenerId(I));
    OS << "listener " << I << ' '
       << escapeName(L.Name.isValid() ? T.names().str(L.Name) : "-") << ' '
       << (L.Instrumented ? 1 : 0) << '\n';
  }
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.numTasks()); I != E;
       ++I) {
    const TaskInfo &Info = T.taskInfo(TaskId(I));
    OS << "task " << I << ' '
       << (Info.Kind == TaskKind::Thread ? "thread" : "event") << ' '
       << escapeName(Info.Name.isValid() ? T.names().str(Info.Name) : "-")
       << ' ' << idOrSentinel(Info.Process) << ' '
       << idOrSentinel(Info.Queue) << ' ' << idOrSentinel(Info.Handler)
       << ' ' << Info.DelayMs << ' ' << (Info.SentAtFront ? 1 : 0) << ' '
       << (Info.External ? 1 : 0) << ' ' << idOrSentinel(Info.Parent) << ' '
       << (Info.IsLooper ? 1 : 0) << '\n';
  }
  for (const TraceRecord &Rec : T.records())
    OS << serializeRecordLine(Rec) << '\n';
  return OS.str();
}

namespace {

Status lineError(size_t LineNo, const char *What) {
  return Status::error(
      formatString("trace line %zu: %s", LineNo, What));
}

/// getline-equivalent splitting over a borrowed view, so the parser can
/// run directly on an mmap'd file without first copying the bytes into
/// a stream.  Yields lines without their '\n'; a final unterminated
/// line is yielded too, and a trailing '\n' does not produce an empty
/// extra line -- exactly std::getline's behavior.
class LineSplitter {
public:
  explicit LineSplitter(std::string_view Text) : Rest(Text) {}

  bool next(std::string &LineOut) {
    if (Rest.empty())
      return false;
    size_t NL = Rest.find('\n');
    if (NL == std::string_view::npos) {
      LineOut.assign(Rest);
      Rest = {};
    } else {
      LineOut.assign(Rest.substr(0, NL));
      Rest.remove_prefix(NL + 1);
    }
    return true;
  }

private:
  std::string_view Rest;
};

} // namespace

Status cafa::ingest::parseTraceImpl(std::string_view Text, Trace &Out) {
  // Strong guarantee: parse into a local trace and hand it over only on
  // success, so a failure leaves *Out exactly as the caller passed it.
  Trace Parsed;
  LineSplitter IS(Text);
  std::string Line;
  size_t LineNo = 0;

  if (!IS.next(Line) || Line != MagicLine)
    return Status::error("missing or unrecognized trace header; expected "
                         "'cafa-trace v1'");
  ++LineNo;

  while (IS.next(Line)) {
    ++LineNo;
    if (Line.empty() || Line[0] == '#')
      continue;
    std::vector<std::string> Tok = tokenize(Line);
    if (Tok.empty())
      continue;

    if (Tok[0] == "method") {
      if (Tok.size() != 4)
        return lineError(LineNo, "malformed method line");
      uint32_t Id, CodeSize;
      if (!parseU32(Tok[1], Id) || !parseU32(Tok[3], CodeSize))
        return lineError(LineNo, "bad number in method line");
      MethodInfo Info;
      if (Tok[2] != "-")
        Info.Name = Parsed.names().intern(unescapeName(Tok[2]));
      Info.CodeSize = CodeSize;
      MethodId Got = Parsed.addMethod(Info);
      if (Got.value() != Id)
        return lineError(LineNo, "method ids must be dense and in order");
      continue;
    }

    if (Tok[0] == "queue") {
      if (Tok.size() != 4)
        return lineError(LineNo, "malformed queue line");
      uint32_t Id, Looper;
      if (!parseU32(Tok[1], Id) || !parseU32(Tok[3], Looper))
        return lineError(LineNo, "bad number in queue line");
      QueueInfo Info;
      if (Tok[2] != "-")
        Info.Name = Parsed.names().intern(unescapeName(Tok[2]));
      Info.Looper = idFromRaw<TaskId>(Looper);
      QueueId Got = Parsed.addQueue(Info);
      if (Got.value() != Id)
        return lineError(LineNo, "queue ids must be dense and in order");
      continue;
    }

    if (Tok[0] == "listener") {
      if (Tok.size() != 4)
        return lineError(LineNo, "malformed listener line");
      uint32_t Id, Instr;
      if (!parseU32(Tok[1], Id) || !parseU32(Tok[3], Instr))
        return lineError(LineNo, "bad number in listener line");
      ListenerInfo Info;
      if (Tok[2] != "-")
        Info.Name = Parsed.names().intern(unescapeName(Tok[2]));
      Info.Instrumented = Instr != 0;
      ListenerId Got = Parsed.addListener(Info);
      if (Got.value() != Id)
        return lineError(LineNo, "listener ids must be dense and in order");
      continue;
    }

    if (Tok[0] == "task") {
      if (Tok.size() != 12)
        return lineError(LineNo, "malformed task line");
      uint32_t Id, Process, Queue, Handler, Front, External, Parent, Looper;
      uint64_t DelayMs;
      if (!parseU32(Tok[1], Id) || !parseU32(Tok[4], Process) ||
          !parseU32(Tok[5], Queue) || !parseU32(Tok[6], Handler) ||
          !parseU64(Tok[7], DelayMs) || !parseU32(Tok[8], Front) ||
          !parseU32(Tok[9], External) || !parseU32(Tok[10], Parent) ||
          !parseU32(Tok[11], Looper))
        return lineError(LineNo, "bad number in task line");
      TaskInfo Info;
      if (Tok[2] == "thread") {
        Info.Kind = TaskKind::Thread;
      } else if (Tok[2] == "event") {
        Info.Kind = TaskKind::Event;
      } else {
        return lineError(LineNo, "task kind must be 'thread' or 'event'");
      }
      if (Tok[3] != "-")
        Info.Name = Parsed.names().intern(unescapeName(Tok[3]));
      Info.Process = idFromRaw<ProcessId>(Process);
      Info.Queue = idFromRaw<QueueId>(Queue);
      Info.Handler = idFromRaw<MethodId>(Handler);
      Info.DelayMs = DelayMs;
      Info.SentAtFront = Front != 0;
      Info.External = External != 0;
      Info.Parent = idFromRaw<TaskId>(Parent);
      Info.IsLooper = Looper != 0;
      TaskId Got = Parsed.addTask(Info);
      if (Got.value() != Id)
        return lineError(LineNo, "task ids must be dense and in order");
      continue;
    }

    if (Tok[0] == "rec") {
      if (Tok.size() != 9)
        return lineError(LineNo, "malformed rec line");
      uint32_t Task, Method, Pc;
      uint64_t A0, A1, A2, Time;
      OpKind Kind;
      if (!parseU32(Tok[1], Task) || !opKindFromName(Tok[2].c_str(), Kind) ||
          !parseU32(Tok[3], Method) || !parseU32(Tok[4], Pc) ||
          !parseU64(Tok[5], A0) || !parseU64(Tok[6], A1) ||
          !parseU64(Tok[7], A2) || !parseU64(Tok[8], Time))
        return lineError(LineNo, "bad field in rec line");
      if (Task >= Parsed.numTasks())
        return lineError(LineNo, "rec references an undeclared task");
      TraceRecord Rec;
      Rec.Task = TaskId(Task);
      Rec.Kind = Kind;
      Rec.Method = idFromRaw<MethodId>(Method);
      Rec.Pc = Pc;
      Rec.Arg0 = A0;
      Rec.Arg1 = A1;
      Rec.Arg2 = A2;
      Rec.Time = Time;
      Parsed.append(Rec);
      continue;
    }

    return lineError(LineNo, "unknown directive");
  }
  Out = std::move(Parsed);
  return Status::success();
}

Status cafa::writeTraceFile(const Trace &T, const std::string &Path) {
  std::ofstream OS(Path, std::ios::binary);
  if (!OS)
    return Status::error(formatString("cannot open '%s' for writing",
                                      Path.c_str()));
  std::string Text = serializeTrace(T);
  OS.write(Text.data(), static_cast<std::streamsize>(Text.size()));
  if (!OS)
    return Status::error(formatString("write to '%s' failed", Path.c_str()));
  return Status::success();
}

Status cafa::readTraceFile(const std::string &Path, Trace &Out) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return Status::error(formatString("cannot open '%s' for reading",
                                      Path.c_str()));
  std::ostringstream Buffer;
  Buffer << IS.rdbuf();
  return ingest::parseTraceImpl(Buffer.str(), Out);
}
