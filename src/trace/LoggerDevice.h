//===- trace/LoggerDevice.h - In-memory trace sink --------------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stand-in for the paper's kernel logger device.  Instrumentation
/// hooks append records here during a simulated execution; the offline
/// analyzer later takes the accumulated Trace.  When mirroring is on, the
/// device also serializes every record to an in-memory byte stream, so an
/// instrumented run pays a realistic per-record formatting/writing cost
/// (this is what Figure 8's slowdown measures).
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_TRACE_LOGGERDEVICE_H
#define CAFA_TRACE_LOGGERDEVICE_H

#include "trace/Trace.h"

#include <string>
#include <utility>

namespace cafa {

/// Accumulates trace records emitted by the instrumented runtime.
class LoggerDevice {
public:
  /// \param MirrorToStream when true, each record is additionally
  /// serialized to the text stream (costs CPU like a real logger write).
  /// \param WritePasses calibrates the per-record device-write cost: the
  /// paper's ROM crosses JNI and copies each record into a kernel logger
  /// device, which costs far more than the record's construction; each
  /// pass checksums the serialized bytes once.
  explicit LoggerDevice(bool MirrorToStream = true,
                        uint32_t WritePasses = 10)
      : MirrorToStream(MirrorToStream), WritePasses(WritePasses) {}

  /// The trace being accumulated (side tables are registered directly).
  Trace &trace() { return TraceData; }
  const Trace &trace() const { return TraceData; }

  /// Appends \p Rec, mirroring it to the byte stream when enabled.
  void append(const TraceRecord &Rec);

  /// Total bytes written to the mirror stream so far.
  size_t streamBytes() const { return Stream.size(); }

  /// Moves the accumulated trace out of the device.
  Trace take() { return std::move(TraceData); }

private:
  Trace TraceData;
  bool MirrorToStream;
  uint32_t WritePasses;
  std::string Stream;
};

} // namespace cafa

#endif // CAFA_TRACE_LOGGERDEVICE_H
