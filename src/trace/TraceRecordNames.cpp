//===- trace/TraceRecordNames.cpp - OpKind mnemonics ----------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/TraceRecord.h"

#include <cassert>
#include <cstring>

using namespace cafa;

static const char *const KindNames[] = {
    "begin",     "end",      "rd",       "wr",       "fork",
    "join",      "wait",     "notify",   "send",     "sendatfront",
    "register",  "perform",  "lock",     "unlock",   "ipcsend",
    "ipcrecv",   "ptrread",  "ptrwrite", "deref",    "branch",
    "methenter", "methexit",
};

static_assert(sizeof(KindNames) / sizeof(KindNames[0]) == NumOpKinds,
              "KindNames must cover every OpKind");

const char *cafa::opKindName(OpKind Kind) {
  unsigned Index = static_cast<unsigned>(Kind);
  assert(Index < NumOpKinds && "invalid OpKind");
  return KindNames[Index];
}

bool cafa::opKindFromName(const char *Name, OpKind &KindOut) {
  for (unsigned I = 0; I != NumOpKinds; ++I) {
    if (std::strcmp(Name, KindNames[I]) == 0) {
      KindOut = static_cast<OpKind>(I);
      return true;
    }
  }
  return false;
}
