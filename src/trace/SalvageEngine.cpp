//===- trace/SalvageEngine.cpp - Lex/admit split for salvage --------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The salvage pipeline merges three passes the strict pipeline runs
// separately -- parsing, validation, and repair -- because a sound repair
// decision needs the running validation state: whether the task has begun,
// what it holds locked, which event owns its queue.  Each input line is
// either admitted (possibly after an in-place fixup), admitted together
// with synthesized bookkeeping records that restore an invariant, or
// dropped.  Synthesized records are restricted to kinds the detectors
// never report on (begin/end, lock release/acquire, method enter/exit),
// so salvage can widen the candidate space but cannot invent an access.
//
// This file splits that pipeline for parallel ingestion: lexShard() is
// the stateless per-line half (tokenize, parse numbers, intern names)
// and runs concurrently over byte-range shards; SalvageMachine is the
// stateful half and runs over the lexed shards in original byte order.
// The admission logic is a line-for-line port of the historical
// streaming TraceReader -- every diagnostic string, every budget check,
// and the intern-before-drop ordering are preserved so the output is
// byte-compatible with the single-pass parser.
//
//===----------------------------------------------------------------------===//

#include "trace/SalvageEngine.h"

#include "support/Format.h"
#include "support/Snapshot.h"
#include "trace/TraceTextFormat.h"

#include <algorithm>
#include <cstring>

using namespace cafa;
using namespace cafa::ingest;

namespace {

constexpr uint32_t SentinelId = 0xFFFFFFFFu;

//===----------------------------------------------------------------------===//
// Lexing helpers (must replicate TraceTextFormat semantics exactly)
//===----------------------------------------------------------------------===//

/// The whitespace set istringstream extraction skips in the "C" locale.
inline bool isSpaceByte(char C) {
  return C == ' ' || C == '\t' || C == '\n' || C == '\v' || C == '\f' ||
         C == '\r';
}

constexpr size_t MaxTok = 12; // the widest directive (task) has 12 tokens

/// Splits \p Line into whitespace-separated tokens.  Returns the token
/// count; MaxTok + 1 signals "more than MaxTok" (every directive's
/// token-count equality check then fails, matching the vector-based
/// tokenizer's behavior).
size_t splitTokens(std::string_view Line, std::string_view *Toks) {
  size_t N = 0;
  size_t I = 0;
  while (true) {
    while (I < Line.size() && isSpaceByte(Line[I]))
      ++I;
    if (I >= Line.size())
      return N;
    size_t Begin = I;
    while (I < Line.size() && !isSpaceByte(Line[I]))
      ++I;
    if (N == MaxTok)
      return MaxTok + 1;
    Toks[N++] = Line.substr(Begin, I - Begin);
  }
}

/// strtoull(.., 10) semantics on a token: optional single +/- sign,
/// decimal digits only, unsigned wraparound on negation, saturation to
/// UINT64_MAX on overflow (still a successful parse).
bool parseU64Sv(std::string_view S, uint64_t &Out) {
  size_t I = 0;
  bool Neg = false;
  if (I < S.size() && (S[I] == '+' || S[I] == '-')) {
    Neg = S[I] == '-';
    ++I;
  }
  if (I == S.size())
    return false;
  uint64_t V = 0;
  bool Overflow = false;
  for (; I != S.size(); ++I) {
    char C = S[I];
    if (C < '0' || C > '9')
      return false;
    uint64_t D = static_cast<uint64_t>(C - '0');
    if (!Overflow) {
      if (V > (UINT64_MAX - D) / 10)
        Overflow = true;
      else
        V = V * 10 + D;
    }
  }
  if (Overflow)
    V = UINT64_MAX; // strtoull saturates and ignores the sign on overflow
  else if (Neg)
    V = 0 - V;
  Out = V;
  return true;
}

bool parseU32Sv(std::string_view S, uint32_t &Out) {
  uint64_t V;
  if (!parseU64Sv(S, V) || V > 0xFFFFFFFFull)
    return false;
  Out = static_cast<uint32_t>(V);
  return true;
}

bool opKindFromSv(std::string_view S, OpKind &Out) {
  char Buf[16];
  if (S.size() >= sizeof(Buf))
    return false;
  std::memcpy(Buf, S.data(), S.size());
  Buf[S.size()] = '\0';
  return opKindFromName(Buf, Out);
}

StrId internName(std::string_view S, StringInterner &Names) {
  if (S.find('\\') == std::string_view::npos)
    return Names.intern(S);
  std::string Un;
  Un.reserve(S.size());
  for (size_t I = 0; I != S.size(); ++I) {
    if (S[I] == '\\' && I + 1 < S.size()) {
      ++I;
      Un.push_back(S[I] == 's' ? ' ' : S[I]);
      continue;
    }
    Un.push_back(S[I]);
  }
  return Names.intern(Un);
}

//===----------------------------------------------------------------------===//
// Per-line lexing
//===----------------------------------------------------------------------===//

LexedLine &emit(ShardFragment &Out, uint32_t Rel, LineKind Kind) {
  Out.Lines.emplace_back();
  LexedLine &L = Out.Lines.back();
  L.RelLine = Rel;
  L.Kind = Kind;
  return L;
}

void emitDrop(ShardFragment &Out, uint32_t Rel, const char *Msg) {
  emit(Out, Rel, LineKind::Drop).DropMsg = Msg;
}

void lexRec(const std::string_view *Toks, size_t N, uint32_t Rel,
            ShardFragment &Out) {
  if (N != 9) {
    emitDrop(Out, Rel, "malformed rec line");
    return;
  }
  uint32_t TaskRaw, MethodRaw, Pc;
  uint64_t A0, A1, A2, Time;
  OpKind Kind;
  if (!parseU32Sv(Toks[1], TaskRaw) || !opKindFromSv(Toks[2], Kind) ||
      !parseU32Sv(Toks[3], MethodRaw) || !parseU32Sv(Toks[4], Pc) ||
      !parseU64Sv(Toks[5], A0) || !parseU64Sv(Toks[6], A1) ||
      !parseU64Sv(Toks[7], A2) || !parseU64Sv(Toks[8], Time)) {
    emitDrop(Out, Rel, "bad field in rec line");
    return;
  }
  LexedLine &L = emit(Out, Rel, LineKind::Rec);
  L.Op = Kind;
  L.Id = TaskRaw;
  L.Aux = MethodRaw;
  L.Pc = Pc;
  L.Arg0 = A0;
  L.Arg1 = A1;
  L.Arg2 = A2;
  L.Time = Time;
}

/// Shared lexer for the three id/name/number declaration directives.
void lexDecl(LineKind Kind, const char *MalformedMsg, const char *BadNumMsg,
             const std::string_view *Toks, size_t N, uint32_t Rel,
             ShardFragment &Out) {
  if (N != 4) {
    emitDrop(Out, Rel, MalformedMsg);
    return;
  }
  uint32_t Id, Aux;
  if (!parseU32Sv(Toks[1], Id) || !parseU32Sv(Toks[3], Aux)) {
    emitDrop(Out, Rel, BadNumMsg);
    return;
  }
  LexedLine &L = emit(Out, Rel, Kind);
  L.Id = Id;
  L.Aux = Aux;
  if (Toks[2] != "-")
    L.Name = internName(Toks[2], Out.Names);
}

void lexTask(const std::string_view *Toks, size_t N, uint32_t Rel,
             ShardFragment &Out) {
  if (N != 12) {
    emitDrop(Out, Rel, "malformed task line");
    return;
  }
  uint32_t Id, Process, Queue, Handler, Front, External, Parent, Looper;
  uint64_t DelayMs;
  if (!parseU32Sv(Toks[1], Id) || !parseU32Sv(Toks[4], Process) ||
      !parseU32Sv(Toks[5], Queue) || !parseU32Sv(Toks[6], Handler) ||
      !parseU64Sv(Toks[7], DelayMs) || !parseU32Sv(Toks[8], Front) ||
      !parseU32Sv(Toks[9], External) || !parseU32Sv(Toks[10], Parent) ||
      !parseU32Sv(Toks[11], Looper)) {
    emitDrop(Out, Rel, "bad number in task line");
    return;
  }
  uint8_t Flags = 0;
  if (Toks[2] == "thread") {
    ;
  } else if (Toks[2] == "event") {
    Flags |= TaskFlagEvent;
  } else {
    emitDrop(Out, Rel, "task kind must be 'thread' or 'event'");
    return;
  }
  if (Front)
    Flags |= TaskFlagFront;
  if (External)
    Flags |= TaskFlagExternal;
  if (Looper)
    Flags |= TaskFlagLooper;
  LexedLine &L = emit(Out, Rel, LineKind::Task);
  L.TaskFlags = Flags;
  L.Id = Id;
  L.Aux2 = Process;
  L.QueueRef = Queue;
  L.Pc = Handler;
  L.Parent = Parent;
  L.Arg0 = DelayMs;
  if (Toks[3] != "-")
    L.Name = internName(Toks[3], Out.Names);
}

void lexLine(std::string_view Line, uint32_t Rel, ShardFragment &Out) {
  if (!Line.empty() && Line.back() == '\r')
    Line.remove_suffix(1);
  if (Line == tracetext::MagicLine) {
    emit(Out, Rel, LineKind::Magic);
    return;
  }
  // Blank and comment lines carry no content, but the machine's
  // first-line header logic must still see *a* first line, so the lexer
  // materializes exactly the shard's leading line even when blank.
  if (Line.empty() || Line[0] == '#') {
    if (Rel == 1)
      emit(Out, Rel, LineKind::Blank);
    return;
  }
  std::string_view Toks[MaxTok];
  size_t N = splitTokens(Line, Toks);
  if (N == 0) {
    if (Rel == 1)
      emit(Out, Rel, LineKind::Blank);
    return;
  }
  std::string_view D = Toks[0];
  if (D == "rec")
    lexRec(Toks, N, Rel, Out);
  else if (D == "method")
    lexDecl(LineKind::Method, "malformed method line",
            "bad number in method line", Toks, N, Rel, Out);
  else if (D == "queue")
    lexDecl(LineKind::Queue, "malformed queue line",
            "bad number in queue line", Toks, N, Rel, Out);
  else if (D == "listener")
    lexDecl(LineKind::Listener, "malformed listener line",
            "bad number in listener line", Toks, N, Rel, Out);
  else if (D == "task")
    lexTask(Toks, N, Rel, Out);
  else
    emit(Out, Rel, LineKind::Unknown).Token = std::string(D);
}

} // namespace

void cafa::ingest::lexShard(std::string_view Text, ShardFragment &Out) {
  Out.Lines.reserve(static_cast<size_t>(
      std::count(Text.begin(), Text.end(), '\n') + 1));
  uint64_t Rel = 0;
  size_t Pos = 0;
  const size_t Size = Text.size();
  while (Pos < Size) {
    size_t NL = Text.find('\n', Pos);
    size_t End = NL == std::string_view::npos ? Size : NL;
    ++Rel;
    lexLine(Text.substr(Pos, End - Pos), static_cast<uint32_t>(Rel), Out);
    if (NL == std::string_view::npos) {
      Out.EndsWithoutNewline = true;
      break;
    }
    Pos = NL + 1;
  }
  Out.LineCount = Rel;
}

//===----------------------------------------------------------------------===//
// SalvageMachine: accounting
//===----------------------------------------------------------------------===//

SalvageMachine::SalvageMachine(const SalvageOptions &Options) : Opt(Options) {}

void SalvageMachine::hardFail(const std::string &Msg) {
  if (!Failed) {
    Failed = true;
    Fail = Status::error(Msg);
  }
}

void SalvageMachine::diag(size_t Ln, const std::string &Msg) {
  if (Report.Diagnostics.size() < Opt.MaxDiagnostics)
    Report.Diagnostics.push_back({Ln, Msg});
}

void SalvageMachine::incident(size_t Ln, const std::string &Msg) {
  ++Report.IncidentsTotal;
  diag(Ln, Msg);
  if (Opt.Strict)
    hardFail(Ln ? formatString("strict mode: line %zu: %s", Ln, Msg.c_str())
                : formatString("strict mode: %s", Msg.c_str()));
}

void SalvageMachine::dropLine(size_t Ln, const std::string &Msg) {
  incident(Ln, Msg);
  ++Report.LinesDropped;
  if (Report.LinesDropped > Opt.MaxDroppedLines)
    hardFail(formatString(
        "error budget exceeded: %llu lines dropped (cap %llu)",
        static_cast<unsigned long long>(Report.LinesDropped),
        static_cast<unsigned long long>(Opt.MaxDroppedLines)));
}

//===----------------------------------------------------------------------===//
// SalvageMachine: side-table growth
//===----------------------------------------------------------------------===//

bool SalvageMachine::budgetFor(uint64_t Needed) {
  return Report.TableEntriesSynthesized + Needed <= Opt.MaxSynthesizedEntries;
}

void SalvageMachine::pushTask(const TaskInfo &Info, bool Synth) {
  T.addTask(Info);
  States.emplace_back();
  EventSent.push_back(false);
  SynthTask.push_back(Synth);
}
void SalvageMachine::pushQueue(const QueueInfo &Info, bool Synth) {
  T.addQueue(Info);
  ActiveEvent.push_back(TaskId::invalid());
  SynthQueue.push_back(Synth);
}
void SalvageMachine::pushMethod(const MethodInfo &Info, bool Synth) {
  T.addMethod(Info);
  SynthMethod.push_back(Synth);
}
void SalvageMachine::pushListener(const ListenerInfo &Info, bool Synth) {
  T.addListener(Info);
  SynthListener.push_back(Synth);
}

bool SalvageMachine::padTasks(uint64_t Count) {
  if (Count <= T.numTasks())
    return true;
  uint64_t Needed = Count - T.numTasks();
  if (!budgetFor(Needed))
    return false;
  Report.TableEntriesSynthesized += Needed;
  while (T.numTasks() < Count)
    pushTask(TaskInfo(), true);
  return true;
}
bool SalvageMachine::padQueues(uint64_t Count) {
  if (Count <= T.numQueues())
    return true;
  uint64_t Needed = Count - T.numQueues();
  if (!budgetFor(Needed))
    return false;
  Report.TableEntriesSynthesized += Needed;
  while (T.numQueues() < Count)
    pushQueue(QueueInfo(), true);
  return true;
}
bool SalvageMachine::padMethods(uint64_t Count) {
  if (Count <= T.numMethods())
    return true;
  uint64_t Needed = Count - T.numMethods();
  if (!budgetFor(Needed))
    return false;
  Report.TableEntriesSynthesized += Needed;
  while (T.numMethods() < Count)
    pushMethod(MethodInfo(), true);
  return true;
}
bool SalvageMachine::padListeners(uint64_t Count) {
  if (Count <= T.numListeners())
    return true;
  uint64_t Needed = Count - T.numListeners();
  if (!budgetFor(Needed))
    return false;
  Report.TableEntriesSynthesized += Needed;
  while (T.numListeners() < Count)
    pushListener(ListenerInfo(), true);
  return true;
}

bool SalvageMachine::notePaddedGap(bool Padded, size_t Ln, const char *What,
                                   uint32_t Id) {
  if (!Padded) {
    dropLine(Ln, formatString("gap before %s %u exceeds the synthesis budget",
                              What, Id));
    return false;
  }
  incident(Ln, formatString("gap before %s %u; synthesized placeholders",
                            What, Id));
  return true;
}

//===----------------------------------------------------------------------===//
// SalvageMachine: record synthesis
//===----------------------------------------------------------------------===//

void SalvageMachine::synthRecord(TaskId Task, OpKind Kind, uint64_t A0) {
  TraceRecord R;
  R.Task = Task;
  R.Kind = Kind;
  R.Arg0 = A0;
  R.Time = LastTime;
  T.append(R);
  ++Report.RecordsSynthesized;
}

void SalvageMachine::unwindStacks(TaskId Task) {
  TaskState &S = States[Task.index()];
  while (!S.FrameStack.empty()) {
    synthRecord(Task, OpKind::MethodExit, S.FrameStack.back());
    S.FrameStack.pop_back();
  }
  while (!S.LockStack.empty()) {
    synthRecord(Task, OpKind::LockRelease, S.LockStack.back());
    S.LockStack.pop_back();
  }
}

void SalvageMachine::synthEnd(TaskId Task) {
  unwindStacks(Task);
  synthRecord(Task, OpKind::TaskEnd);
  States[Task.index()].Ended = true;
  const TaskInfo &Info = T.taskInfo(Task);
  if (Info.Kind == TaskKind::Event && Info.Queue.isValid() &&
      Info.Queue.index() < ActiveEvent.size() &&
      ActiveEvent[Info.Queue.index()] == Task)
    ActiveEvent[Info.Queue.index()] = TaskId::invalid();
}

void SalvageMachine::fixEventQueue(TaskId Task, size_t Ln) {
  TaskInfo &Info = T.taskInfoMutable(Task);
  if (Info.Kind != TaskKind::Event)
    return;
  if (Info.Queue.isValid() && Info.Queue.index() < T.numQueues())
    return;
  if (Info.Queue.isValid() &&
      padQueues(static_cast<uint64_t>(Info.Queue.index()) + 1)) {
    incident(Ln, formatString("task %u: undeclared queue %u; synthesized a "
                              "placeholder",
                              Task.value(), Info.Queue.value()));
    return;
  }
  Info.Kind = TaskKind::Thread;
  Info.Queue = QueueId::invalid();
  incident(Ln, formatString("task %u: event with no usable queue demoted to a "
                            "thread",
                            Task.value()));
}

void SalvageMachine::prepareBegin(TaskId Task, size_t Ln) {
  fixEventQueue(Task, Ln);
  const TaskInfo &Info = T.taskInfo(Task);
  if (Info.Kind != TaskKind::Event)
    return;
  uint32_t Q = Info.Queue.index();
  if (ActiveEvent[Q].isValid()) {
    incident(Ln, formatString("queue %u: event %u still open; synthesized its "
                              "terminator",
                              Q, ActiveEvent[Q].value()));
    synthEnd(ActiveEvent[Q]);
  }
  if (!Info.External && !EventSent[Task.index()]) {
    ++Report.UnsentEventBegins;
    incident(Ln, formatString("event %u begins without a send record",
                              Task.value()));
  }
}

void SalvageMachine::synthBegin(TaskId Task, size_t Ln) {
  prepareBegin(Task, Ln);
  synthRecord(Task, OpKind::TaskBegin);
  States[Task.index()].Begun = true;
  const TaskInfo &Info = T.taskInfo(Task);
  if (Info.Kind == TaskKind::Event)
    ActiveEvent[Info.Queue.index()] = Task;
}

//===----------------------------------------------------------------------===//
// SalvageMachine: shard stream
//===----------------------------------------------------------------------===//

StrId SalvageMachine::remapName(StrId ShardId) {
  if (!ShardId.isValid())
    return StrId::invalid();
  if (NameRemap.size() <= ShardId.index())
    NameRemap.resize(ShardNames->size(), StrId::invalid());
  StrId &Mapped = NameRemap[ShardId.index()];
  if (!Mapped.isValid())
    Mapped = T.names().intern(ShardNames->str(ShardId));
  return Mapped;
}

void SalvageMachine::beginShard(const StringInterner &Names) {
  ShardNames = &Names;
  NameRemap.clear();
}

void SalvageMachine::endShard(uint64_t ShardLineCount) {
  LineBase += ShardLineCount;
  ShardNames = nullptr;
}

void SalvageMachine::admit(const LexedLine &L) {
  if (Failed)
    return;
  uint64_t Ln = LineBase + L.RelLine;
  LineNo = Ln;
  if (!SeenFirstLine) {
    SeenFirstLine = true;
    if (L.Kind == LineKind::Magic)
      return;
    Report.MissingHeader = true;
    diag(Ln, "missing 'cafa-trace v1' header");
    if (Opt.Strict) {
      hardFail("strict mode: missing or unrecognized trace header; "
               "expected 'cafa-trace v1'");
      return;
    }
    // Fall through: the first line may itself be a directive.
  }
  switch (L.Kind) {
  case LineKind::Blank:
    return;
  case LineKind::Magic:
    // A header line anywhere but line 1 is just an unknown directive
    // whose first token is "cafa-trace".
    ++Report.LinesTotal;
    dropLine(Ln, "unknown directive 'cafa-trace'");
    return;
  case LineKind::Unknown:
    ++Report.LinesTotal;
    dropLine(Ln, formatString("unknown directive '%s'", L.Token.c_str()));
    return;
  case LineKind::Drop:
    ++Report.LinesTotal;
    dropLine(Ln, L.DropMsg);
    return;
  case LineKind::Rec:
    ++Report.LinesTotal;
    handleRec(L, Ln);
    return;
  case LineKind::Method:
    ++Report.LinesTotal;
    handleMethod(L, Ln);
    return;
  case LineKind::Queue:
    ++Report.LinesTotal;
    handleQueue(L, Ln);
    return;
  case LineKind::Listener:
    ++Report.LinesTotal;
    handleListener(L, Ln);
    return;
  case LineKind::Task:
    ++Report.LinesTotal;
    handleTask(L, Ln);
    return;
  }
}

//===----------------------------------------------------------------------===//
// SalvageMachine: side-table directives
//===----------------------------------------------------------------------===//

void SalvageMachine::handleMethod(const LexedLine &L, size_t Ln) {
  MethodInfo Info;
  // Intern before the re-declare check: the historical parser interned
  // unconditionally after the numeric parse, and the interner's id
  // assignment order is part of the bit-identity contract.
  Info.Name = remapName(L.Name);
  Info.CodeSize = L.Aux;
  uint32_t Id = L.Id;
  if (Id < T.numMethods()) {
    if (!SynthMethod[Id]) {
      dropLine(Ln, formatString("method %u re-declared", Id));
      return;
    }
    T.methodInfoMutable(MethodId(Id)) = Info;
    SynthMethod[Id] = false;
    incident(Ln, formatString("method %u declared out of order; backfilled "
                              "the placeholder",
                              Id));
    return;
  }
  if (Id > T.numMethods()) {
    if (!notePaddedGap(padMethods(Id), Ln, "method", Id))
      return;
  }
  pushMethod(Info, false);
}

void SalvageMachine::handleQueue(const LexedLine &L, size_t Ln) {
  QueueInfo Info;
  Info.Name = remapName(L.Name);
  Info.Looper = tracetext::idFromRaw<TaskId>(L.Aux);
  uint32_t Id = L.Id;
  if (Id < T.numQueues()) {
    if (!SynthQueue[Id]) {
      dropLine(Ln, formatString("queue %u re-declared", Id));
      return;
    }
    T.queueInfoMutable(QueueId(Id)) = Info;
    SynthQueue[Id] = false;
    incident(Ln, formatString("queue %u declared out of order; backfilled "
                              "the placeholder",
                              Id));
    return;
  }
  if (Id > T.numQueues()) {
    if (!notePaddedGap(padQueues(Id), Ln, "queue", Id))
      return;
  }
  pushQueue(Info, false);
}

void SalvageMachine::handleListener(const LexedLine &L, size_t Ln) {
  ListenerInfo Info;
  Info.Name = remapName(L.Name);
  Info.Instrumented = L.Aux != 0;
  uint32_t Id = L.Id;
  if (Id < T.numListeners()) {
    if (!SynthListener[Id]) {
      dropLine(Ln, formatString("listener %u re-declared", Id));
      return;
    }
    T.listenerInfoMutable(ListenerId(Id)) = Info;
    SynthListener[Id] = false;
    incident(Ln, formatString("listener %u declared out of order; backfilled "
                              "the placeholder",
                              Id));
    return;
  }
  if (Id > T.numListeners()) {
    if (!notePaddedGap(padListeners(Id), Ln, "listener", Id))
      return;
  }
  pushListener(Info, false);
}

void SalvageMachine::handleTask(const LexedLine &L, size_t Ln) {
  TaskInfo Info;
  Info.Kind = (L.TaskFlags & TaskFlagEvent) ? TaskKind::Event
                                            : TaskKind::Thread;
  Info.Name = remapName(L.Name);
  Info.Process = tracetext::idFromRaw<ProcessId>(L.Aux2);
  Info.Queue = tracetext::idFromRaw<QueueId>(L.QueueRef);
  Info.Handler = tracetext::idFromRaw<MethodId>(L.Pc);
  Info.DelayMs = L.Arg0;
  Info.SentAtFront = (L.TaskFlags & TaskFlagFront) != 0;
  Info.External = (L.TaskFlags & TaskFlagExternal) != 0;
  Info.Parent = tracetext::idFromRaw<TaskId>(L.Parent);
  Info.IsLooper = (L.TaskFlags & TaskFlagLooper) != 0;
  uint32_t Id = L.Id;
  if (Id < T.numTasks()) {
    // Backfill is only sound while nothing has committed to the
    // placeholder's identity (no records, no send naming it).
    if (!SynthTask[Id] || States[Id].Begun || EventSent[Id]) {
      dropLine(Ln, formatString("task %u re-declared", Id));
      return;
    }
    T.taskInfoMutable(TaskId(Id)) = Info;
    SynthTask[Id] = false;
    incident(Ln, formatString("task %u declared out of order; backfilled "
                              "the placeholder",
                              Id));
    return;
  }
  if (Id > T.numTasks()) {
    if (!notePaddedGap(padTasks(Id), Ln, "task", Id))
      return;
  }
  pushTask(Info, false);
}

//===----------------------------------------------------------------------===//
// SalvageMachine: record directives
//===----------------------------------------------------------------------===//

void SalvageMachine::admitRecord(const TraceRecord &Rec, bool Repaired,
                                 const std::string &Note, size_t Ln) {
  T.append(Rec);
  ++Report.RecordsKept;
  LastTime = Rec.Time;
  if (Repaired) {
    ++Report.RecordsRepaired;
    incident(Ln, Note);
  }
}

void SalvageMachine::handleRec(const LexedLine &L, size_t Ln) {
  uint32_t TaskRaw = L.Id;
  uint32_t MethodRaw = L.Aux;
  OpKind Kind = L.Op;
  uint64_t A0 = L.Arg0, A1 = L.Arg1, A2 = L.Arg2, Time = L.Time;
  if (TaskRaw == SentinelId) {
    dropLine(Ln, "rec with invalid task id");
    return;
  }
  if (TaskRaw >= T.numTasks()) {
    if (!padTasks(static_cast<uint64_t>(TaskRaw) + 1)) {
      dropLine(Ln, formatString("rec references undeclared task %u beyond "
                                "the synthesis budget",
                                TaskRaw));
      return;
    }
    incident(Ln, formatString("rec references undeclared task %u; "
                              "synthesized placeholder tasks",
                              TaskRaw));
  }
  TaskId Task(TaskRaw);

  bool Repaired = false;
  std::string RepairNote;
  auto noteRepair = [&](const std::string &Msg) {
    Repaired = true;
    if (!RepairNote.empty())
      RepairNote += "; ";
    RepairNote += Msg;
  };

  if (Time < LastTime) {
    Time = LastTime;
    noteRepair("timestamp regressed; clamped");
  }

  TraceRecord Rec;
  Rec.Task = Task;
  Rec.Kind = Kind;
  Rec.Method = tracetext::idFromRaw<MethodId>(MethodRaw);
  Rec.Pc = L.Pc;
  Rec.Arg0 = A0;
  Rec.Arg1 = A1;
  Rec.Arg2 = A2;
  Rec.Time = Time;

  // Non-branch records survive an unknown method (report rendering
  // tolerates it); branches are handled in their case below because the
  // guard machinery indexes the method table.
  if (Kind != OpKind::Branch && Rec.Method.isValid() &&
      Rec.Method.index() >= T.numMethods()) {
    Rec.Method = MethodId::invalid();
    noteRepair(formatString("unknown method %u cleared", MethodRaw));
  }

  // Task lifecycle framing.
  if (Kind == OpKind::TaskBegin) {
    if (States[TaskRaw].Begun || States[TaskRaw].Ended) {
      dropLine(Ln, "duplicate task begin");
      return;
    }
    prepareBegin(Task, Ln);
    admitRecord(Rec, Repaired, RepairNote, Ln);
    States[TaskRaw].Begun = true;
    const TaskInfo &Info = T.taskInfo(Task);
    if (Info.Kind == TaskKind::Event)
      ActiveEvent[Info.Queue.index()] = Task;
    return;
  }
  if (States[TaskRaw].Ended) {
    dropLine(Ln, "operation after task end");
    return;
  }
  if (!States[TaskRaw].Begun) {
    incident(Ln, formatString("task %u operates before its begin; "
                              "synthesized one",
                              TaskRaw));
    synthBegin(Task, Ln);
    if (Failed)
      return;
  }

  switch (Kind) {
  case OpKind::TaskBegin:
    return; // handled above

  case OpKind::TaskEnd: {
    TaskState &S = States[TaskRaw];
    if (!S.LockStack.empty() || !S.FrameStack.empty()) {
      noteRepair(formatString(
          "task ends holding %zu locks / %zu frames; synthesized the "
          "balance",
          S.LockStack.size(), S.FrameStack.size()));
      unwindStacks(Task);
    }
    admitRecord(Rec, Repaired, RepairNote, Ln);
    S.Ended = true;
    const TaskInfo &Info = T.taskInfo(Task);
    if (Info.Kind == TaskKind::Event && Info.Queue.isValid() &&
        Info.Queue.index() < ActiveEvent.size() &&
        ActiveEvent[Info.Queue.index()] == Task)
      ActiveEvent[Info.Queue.index()] = TaskId::invalid();
    return;
  }

  case OpKind::Send:
  case OpKind::SendAtFront: {
    if (A0 >= SentinelId) {
      dropLine(Ln, "send with unusable target id");
      return;
    }
    uint32_t Target = static_cast<uint32_t>(A0);
    if (Target >= T.numTasks()) {
      if (!padTasks(static_cast<uint64_t>(Target) + 1)) {
        dropLine(Ln, formatString("send target %u beyond the synthesis "
                                  "budget",
                                  Target));
        return;
      }
      noteRepair(formatString(
          "send target %u undeclared; synthesized a placeholder", Target));
    }
    TaskInfo &TI = T.taskInfoMutable(TaskId(Target));
    if (TI.Kind != TaskKind::Event) {
      if (SynthTask[Target] && !States[Target].Begun) {
        TI.Kind = TaskKind::Event;
        noteRepair(formatString("placeholder task %u assumed to be an "
                                "event",
                                Target));
      } else {
        dropLine(Ln, "send target is not an event");
        return;
      }
    }
    if (EventSent[Target]) {
      dropLine(Ln, "event sent twice");
      return;
    }
    if (States[Target].Begun) {
      dropLine(Ln, "event sent after it began");
      return;
    }
    if (TI.Queue.isValid() && TI.Queue.index() < T.numQueues()) {
      if (Rec.Arg2 != TI.Queue.value()) {
        Rec.Arg2 = TI.Queue.value();
        noteRepair("send queue rewritten to the task table's");
      }
    } else if (A2 < SentinelId && padQueues(A2 + 1)) {
      TI.Queue = QueueId(static_cast<uint32_t>(A2));
      noteRepair("task-table queue adopted from the send record");
    } else {
      dropLine(Ln, "send with no usable queue");
      return;
    }
    EventSent[Target] = true;
    admitRecord(Rec, Repaired, RepairNote, Ln);
    return;
  }

  case OpKind::Fork: {
    if (A0 >= SentinelId) {
      dropLine(Ln, "fork with unusable target id");
      return;
    }
    uint32_t Target = static_cast<uint32_t>(A0);
    if (Target >= T.numTasks()) {
      if (!padTasks(static_cast<uint64_t>(Target) + 1)) {
        dropLine(Ln, formatString("fork target %u beyond the synthesis "
                                  "budget",
                                  Target));
        return;
      }
      noteRepair(formatString(
          "fork target %u undeclared; synthesized a placeholder", Target));
    }
    if (T.taskInfo(TaskId(Target)).Kind != TaskKind::Thread) {
      dropLine(Ln, "fork target is not a thread");
      return;
    }
    admitRecord(Rec, Repaired, RepairNote, Ln);
    return;
  }

  case OpKind::Join: {
    if (A0 >= SentinelId) {
      dropLine(Ln, "join with unusable target id");
      return;
    }
    uint32_t Target = static_cast<uint32_t>(A0);
    if (Target >= T.numTasks()) {
      if (!padTasks(static_cast<uint64_t>(Target) + 1)) {
        dropLine(Ln, formatString("join target %u beyond the synthesis "
                                  "budget",
                                  Target));
        return;
      }
      noteRepair(formatString(
          "join target %u undeclared; synthesized a placeholder", Target));
    }
    if (T.taskInfo(TaskId(Target)).Kind != TaskKind::Thread) {
      dropLine(Ln, "join target is not a thread");
      return;
    }
    if (!States[Target].Ended) {
      noteRepair(formatString(
          "join of unended thread %u; synthesized its end", Target));
      if (!States[Target].Begun)
        synthBegin(TaskId(Target), Ln);
      synthEnd(TaskId(Target));
    }
    admitRecord(Rec, Repaired, RepairNote, Ln);
    return;
  }

  case OpKind::Wait:
  case OpKind::Notify:
    // The HB builder sizes per-monitor arrays by the largest id seen;
    // a corrupted id must not conjure a multi-gigabyte allocation.
    if (A0 > Opt.MaxEntityId) {
      dropLine(Ln, "monitor id out of bounds");
      return;
    }
    admitRecord(Rec, Repaired, RepairNote, Ln);
    return;

  case OpKind::Read:
  case OpKind::Write:
  case OpKind::PtrRead:
  case OpKind::PtrWrite:
    // The detector sizes its frees-by-variable index by the largest
    // variable id seen.
    if (A0 > Opt.MaxEntityId) {
      dropLine(Ln, "variable id out of bounds");
      return;
    }
    admitRecord(Rec, Repaired, RepairNote, Ln);
    return;

  case OpKind::Deref:
  case OpKind::IpcSend:
  case OpKind::IpcRecv:
    admitRecord(Rec, Repaired, RepairNote, Ln);
    return;

  case OpKind::Branch:
    if (A0 > 2) {
      dropLine(Ln, "unknown branch kind");
      return;
    }
    if (A2 > 0xFFFFFFFFull) {
      dropLine(Ln, "branch target pc out of range");
      return;
    }
    if (!Rec.Method.isValid() || Rec.Method.index() >= T.numMethods()) {
      dropLine(Ln, "branch outside any known method");
      return;
    }
    admitRecord(Rec, Repaired, RepairNote, Ln);
    return;

  case OpKind::RegisterListener:
  case OpKind::PerformListener: {
    if (A0 >= SentinelId) {
      dropLine(Ln, "listener id out of bounds");
      return;
    }
    uint32_t L2 = static_cast<uint32_t>(A0);
    if (L2 >= T.numListeners()) {
      if (!padListeners(static_cast<uint64_t>(L2) + 1)) {
        dropLine(Ln, formatString("listener %u beyond the synthesis budget",
                                  L2));
        return;
      }
      noteRepair(formatString(
          "listener %u undeclared; synthesized a placeholder", L2));
    }
    admitRecord(Rec, Repaired, RepairNote, Ln);
    return;
  }

  case OpKind::LockAcquire:
    States[TaskRaw].LockStack.push_back(A0);
    admitRecord(Rec, Repaired, RepairNote, Ln);
    return;

  case OpKind::LockRelease: {
    TaskState &S = States[TaskRaw];
    if (S.LockStack.empty() || S.LockStack.back() != A0) {
      bool Held = std::find(S.LockStack.begin(), S.LockStack.end(), A0) !=
                  S.LockStack.end();
      if (Held) {
        noteRepair("release out of order; synthesized releases for "
                   "inner locks");
        while (S.LockStack.back() != A0) {
          synthRecord(Task, OpKind::LockRelease, S.LockStack.back());
          S.LockStack.pop_back();
        }
      } else {
        noteRepair("release without acquire; synthesized one");
        synthRecord(Task, OpKind::LockAcquire, A0);
        S.LockStack.push_back(A0);
      }
    }
    S.LockStack.pop_back();
    admitRecord(Rec, Repaired, RepairNote, Ln);
    return;
  }

  case OpKind::MethodEnter:
    if (!SeenFrameIds.insert(A0).second) {
      dropLine(Ln, "frame id reused");
      return;
    }
    States[TaskRaw].FrameStack.push_back(A0);
    admitRecord(Rec, Repaired, RepairNote, Ln);
    return;

  case OpKind::MethodExit: {
    TaskState &S = States[TaskRaw];
    if (S.FrameStack.empty() || S.FrameStack.back() != A0) {
      bool Open = std::find(S.FrameStack.begin(), S.FrameStack.end(), A0) !=
                  S.FrameStack.end();
      if (Open) {
        noteRepair("exit of an outer frame; synthesized exits for inner "
                   "frames");
        while (S.FrameStack.back() != A0) {
          synthRecord(Task, OpKind::MethodExit, S.FrameStack.back());
          S.FrameStack.pop_back();
        }
      } else if (SeenFrameIds.insert(A0).second) {
        noteRepair("exit without enter; synthesized one");
        synthRecord(Task, OpKind::MethodEnter, A0);
        S.FrameStack.push_back(A0);
      } else {
        dropLine(Ln, "unmatched method exit");
        return;
      }
    }
    S.FrameStack.pop_back();
    admitRecord(Rec, Repaired, RepairNote, Ln);
    return;
  }
  }
}

//===----------------------------------------------------------------------===//
// SalvageMachine: end of input
//===----------------------------------------------------------------------===//

Status SalvageMachine::finish(Trace &Out, IngestReport &ReportOut) {
  if (!SeenFirstLine && !Failed) {
    Report.MissingHeader = true;
    if (Opt.Strict)
      hardFail("strict mode: empty input");
  }

  // Close events the stream left open (trace truncated mid-handler).
  // Strict mode skips this: an unended task is legal in a validated
  // trace (the runtime stops logging after a fixed interaction window),
  // so strict accepts it unchanged.
  if (!Failed && !Opt.Strict && Opt.RepairTruncation) {
    for (uint32_t I = 0, E = static_cast<uint32_t>(T.numTasks()); I != E;
         ++I) {
      if (!States[I].Begun || States[I].Ended)
        continue;
      if (T.taskInfo(TaskId(I)).Kind != TaskKind::Event)
        continue;
      incident(0, formatString("input ended while event %u was executing; "
                               "synthesized its terminator",
                               I));
      synthEnd(TaskId(I));
    }
  }

  // Bound every dormant cross-reference so downstream dense indexing
  // stays in range even for tasks that never produced a record.
  if (!Failed && !Opt.Strict) {
    for (uint32_t I = 0, E = static_cast<uint32_t>(T.numTasks()); I != E;
         ++I) {
      TaskInfo &Info = T.taskInfoMutable(TaskId(I));
      if (Info.Queue.isValid() && Info.Queue.index() >= T.numQueues()) {
        Info.Queue = QueueId::invalid();
        if (Info.Kind == TaskKind::Event)
          Info.Kind = TaskKind::Thread;
        incident(0, formatString("task %u: dangling queue reference cleared",
                                 I));
      }
      if (Info.Parent.isValid() && Info.Parent.index() >= T.numTasks()) {
        Info.Parent = TaskId::invalid();
        incident(0, formatString("task %u: dangling parent reference cleared",
                                 I));
      }
      if (Info.Handler.isValid() && Info.Handler.index() >= T.numMethods()) {
        Info.Handler = MethodId::invalid();
        incident(0, formatString("task %u: dangling handler reference "
                                 "cleared",
                                 I));
      }
    }
    for (uint32_t I = 0, E = static_cast<uint32_t>(T.numQueues()); I != E;
         ++I) {
      QueueInfo &Info = T.queueInfoMutable(QueueId(I));
      if (Info.Looper.isValid() && Info.Looper.index() >= T.numTasks()) {
        Info.Looper = TaskId::invalid();
        incident(0, formatString("queue %u: dangling looper reference "
                                 "cleared",
                                 I));
      }
    }
  }

  if (!Failed && Report.LinesTotal > 0) {
    double Ratio = static_cast<double>(Report.LinesDropped) /
                   static_cast<double>(Report.LinesTotal);
    if (Ratio > Opt.MaxDroppedRatio)
      hardFail(formatString(
          "error budget exceeded: dropped %llu of %llu lines "
          "(%.0f%% > %.0f%% cap)",
          static_cast<unsigned long long>(Report.LinesDropped),
          static_cast<unsigned long long>(Report.LinesTotal),
          Ratio * 100.0, Opt.MaxDroppedRatio * 100.0));
  }

  ReportOut = std::move(Report);
  if (Failed)
    return Fail;
  Out = std::move(T);
  return Status::success();
}

//===----------------------------------------------------------------------===//
// SalvageMachine: snapshot round-trip
//===----------------------------------------------------------------------===//

namespace {

/// Sanity bound on decoded element counts; real counts are bounded by
/// the payload length anyway (every element costs bytes), this just
/// keeps a corrupt count from driving a huge loop before reads fail.
constexpr uint64_t MaxDecodeCount = 1ull << 28;

void encodeStrId(SnapshotWriter &W, StrId Id) {
  W.u32(tracetext::idOrSentinel(Id));
}

template <typename IdT> bool decodeId(SnapshotReader &R, IdT &Out) {
  uint32_t Raw;
  if (!R.u32(Raw))
    return false;
  Out = tracetext::idFromRaw<IdT>(Raw);
  return true;
}

} // namespace

void SalvageMachine::encodeState(SnapshotWriter &W) const {
  // Stream position.
  W.u64(LineBase);
  W.u8(SeenFirstLine ? 1 : 0);
  W.u64(LastTime);

  // Report.
  W.u64(Report.LinesTotal);
  W.u64(Report.LinesDropped);
  W.u64(Report.RecordsKept);
  W.u64(Report.RecordsRepaired);
  W.u64(Report.RecordsSynthesized);
  W.u64(Report.TableEntriesSynthesized);
  W.u64(Report.UnsentEventBegins);
  W.u8(Report.MissingHeader ? 1 : 0);
  W.u8(Report.TruncatedFinalLine ? 1 : 0);
  W.u64(Report.IncidentsTotal);
  W.u32(static_cast<uint32_t>(Report.Diagnostics.size()));
  for (const IngestDiagnostic &D : Report.Diagnostics) {
    W.u64(D.LineNo);
    W.str(D.Message);
  }

  // Interner (ids are dense indices, so order is the content).
  W.u32(static_cast<uint32_t>(T.names().size()));
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.names().size()); I != E;
       ++I)
    W.str(T.names().str(StrId(I)));

  // Records.
  W.u64(T.numRecords());
  for (const TraceRecord &R : T.records()) {
    W.u32(tracetext::idOrSentinel(R.Task));
    W.u8(static_cast<uint8_t>(R.Kind));
    W.u32(tracetext::idOrSentinel(R.Method));
    W.u32(R.Pc);
    W.u64(R.Arg0);
    W.u64(R.Arg1);
    W.u64(R.Arg2);
    W.u64(R.Time);
  }

  // Side tables + their validator mirrors, element-wise so the decoder
  // can rebuild both in one pass.
  W.u32(static_cast<uint32_t>(T.numTasks()));
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.numTasks()); I != E; ++I) {
    const TaskInfo &Info = T.taskInfo(TaskId(I));
    W.u8(Info.Kind == TaskKind::Event ? 1 : 0);
    encodeStrId(W, Info.Name);
    W.u32(tracetext::idOrSentinel(Info.Process));
    W.u32(tracetext::idOrSentinel(Info.Queue));
    W.u32(tracetext::idOrSentinel(Info.Handler));
    W.u64(Info.DelayMs);
    W.u8(Info.SentAtFront ? 1 : 0);
    W.u8(Info.External ? 1 : 0);
    W.u32(tracetext::idOrSentinel(Info.Parent));
    W.u8(Info.IsLooper ? 1 : 0);
    const TaskState &S = States[I];
    W.u8(S.Begun ? 1 : 0);
    W.u8(S.Ended ? 1 : 0);
    W.u32(static_cast<uint32_t>(S.LockStack.size()));
    W.u64s(S.LockStack.data(), S.LockStack.size());
    W.u32(static_cast<uint32_t>(S.FrameStack.size()));
    W.u64s(S.FrameStack.data(), S.FrameStack.size());
    W.u8(EventSent[I] ? 1 : 0);
    W.u8(SynthTask[I] ? 1 : 0);
  }

  W.u32(static_cast<uint32_t>(T.numQueues()));
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.numQueues()); I != E;
       ++I) {
    const QueueInfo &Info = T.queueInfo(QueueId(I));
    encodeStrId(W, Info.Name);
    W.u32(tracetext::idOrSentinel(Info.Looper));
    W.u32(tracetext::idOrSentinel(ActiveEvent[I]));
    W.u8(SynthQueue[I] ? 1 : 0);
  }

  W.u32(static_cast<uint32_t>(T.numMethods()));
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.numMethods()); I != E;
       ++I) {
    const MethodInfo &Info = T.methodInfo(MethodId(I));
    encodeStrId(W, Info.Name);
    W.u32(Info.CodeSize);
    W.u8(SynthMethod[I] ? 1 : 0);
  }

  W.u32(static_cast<uint32_t>(T.numListeners()));
  for (uint32_t I = 0, E = static_cast<uint32_t>(T.numListeners()); I != E;
       ++I) {
    const ListenerInfo &Info = T.listenerInfo(ListenerId(I));
    encodeStrId(W, Info.Name);
    W.u8(Info.Instrumented ? 1 : 0);
    W.u8(SynthListener[I] ? 1 : 0);
  }

  // Frame-id history, sorted so the encoding is deterministic.
  std::vector<uint64_t> Frames(SeenFrameIds.begin(), SeenFrameIds.end());
  std::sort(Frames.begin(), Frames.end());
  W.u64(Frames.size());
  W.u64s(Frames.data(), Frames.size());
}

bool SalvageMachine::decodeState(SnapshotReader &R) {
  uint8_t B;
  if (!R.u64(LineBase) || !R.u8(B))
    return false;
  SeenFirstLine = B != 0;
  if (!R.u64(LastTime))
    return false;

  if (!R.u64(Report.LinesTotal) || !R.u64(Report.LinesDropped) ||
      !R.u64(Report.RecordsKept) || !R.u64(Report.RecordsRepaired) ||
      !R.u64(Report.RecordsSynthesized) ||
      !R.u64(Report.TableEntriesSynthesized) ||
      !R.u64(Report.UnsentEventBegins))
    return false;
  if (!R.u8(B))
    return false;
  Report.MissingHeader = B != 0;
  if (!R.u8(B))
    return false;
  Report.TruncatedFinalLine = B != 0;
  if (!R.u64(Report.IncidentsTotal))
    return false;
  uint32_t DiagCount;
  if (!R.u32(DiagCount) || DiagCount > MaxDecodeCount)
    return false;
  Report.Diagnostics.clear();
  for (uint32_t I = 0; I != DiagCount; ++I) {
    IngestDiagnostic D;
    uint64_t Ln;
    if (!R.u64(Ln) || !R.str(D.Message))
      return false;
    D.LineNo = static_cast<size_t>(Ln);
    Report.Diagnostics.push_back(std::move(D));
  }

  uint32_t NameCount;
  if (!R.u32(NameCount) || NameCount > MaxDecodeCount)
    return false;
  for (uint32_t I = 0; I != NameCount; ++I) {
    std::string S;
    if (!R.str(S))
      return false;
    // Duplicate strings would silently renumber every name reference.
    if (T.names().intern(S).value() != I)
      return false;
  }

  uint64_t RecCount;
  if (!R.u64(RecCount) || RecCount > MaxDecodeCount)
    return false;
  for (uint64_t I = 0; I != RecCount; ++I) {
    TraceRecord Rec;
    uint8_t Kind;
    if (!decodeId(R, Rec.Task) || !R.u8(Kind) || Kind >= NumOpKinds ||
        !decodeId(R, Rec.Method) || !R.u32(Rec.Pc) || !R.u64(Rec.Arg0) ||
        !R.u64(Rec.Arg1) || !R.u64(Rec.Arg2) || !R.u64(Rec.Time))
      return false;
    Rec.Kind = static_cast<OpKind>(Kind);
    T.append(Rec);
  }

  uint32_t TaskCount;
  if (!R.u32(TaskCount) || TaskCount > MaxDecodeCount)
    return false;
  for (uint32_t I = 0; I != TaskCount; ++I) {
    TaskInfo Info;
    uint8_t Kind, Front, External, Looper, Begun, Ended, Sent, Synth;
    if (!R.u8(Kind))
      return false;
    Info.Kind = Kind ? TaskKind::Event : TaskKind::Thread;
    if (!decodeId(R, Info.Name) || !decodeId(R, Info.Process) ||
        !decodeId(R, Info.Queue) || !decodeId(R, Info.Handler) ||
        !R.u64(Info.DelayMs) || !R.u8(Front) || !R.u8(External) ||
        !decodeId(R, Info.Parent) || !R.u8(Looper))
      return false;
    if (Info.Name.isValid() && Info.Name.index() >= T.names().size())
      return false;
    Info.SentAtFront = Front != 0;
    Info.External = External != 0;
    Info.IsLooper = Looper != 0;
    TaskState S;
    uint32_t Depth;
    if (!R.u8(Begun) || !R.u8(Ended) || !R.u32(Depth) ||
        Depth > MaxDecodeCount)
      return false;
    S.Begun = Begun != 0;
    S.Ended = Ended != 0;
    S.LockStack.resize(Depth);
    if (!R.u64s(S.LockStack.data(), Depth))
      return false;
    if (!R.u32(Depth) || Depth > MaxDecodeCount)
      return false;
    S.FrameStack.resize(Depth);
    if (!R.u64s(S.FrameStack.data(), Depth))
      return false;
    if (!R.u8(Sent) || !R.u8(Synth))
      return false;
    T.addTask(Info);
    States.push_back(std::move(S));
    EventSent.push_back(Sent != 0);
    SynthTask.push_back(Synth != 0);
  }

  uint32_t QueueCount;
  if (!R.u32(QueueCount) || QueueCount > MaxDecodeCount)
    return false;
  for (uint32_t I = 0; I != QueueCount; ++I) {
    QueueInfo Info;
    TaskId Active;
    uint8_t Synth;
    if (!decodeId(R, Info.Name) || !decodeId(R, Info.Looper) ||
        !decodeId(R, Active) || !R.u8(Synth))
      return false;
    if (Info.Name.isValid() && Info.Name.index() >= T.names().size())
      return false;
    if (Active.isValid() && Active.index() >= T.numTasks())
      return false;
    T.addQueue(Info);
    ActiveEvent.push_back(Active);
    SynthQueue.push_back(Synth != 0);
  }

  uint32_t MethodCount;
  if (!R.u32(MethodCount) || MethodCount > MaxDecodeCount)
    return false;
  for (uint32_t I = 0; I != MethodCount; ++I) {
    MethodInfo Info;
    uint8_t Synth;
    if (!decodeId(R, Info.Name) || !R.u32(Info.CodeSize) || !R.u8(Synth))
      return false;
    if (Info.Name.isValid() && Info.Name.index() >= T.names().size())
      return false;
    T.addMethod(Info);
    SynthMethod.push_back(Synth != 0);
  }

  uint32_t ListenerCount;
  if (!R.u32(ListenerCount) || ListenerCount > MaxDecodeCount)
    return false;
  for (uint32_t I = 0; I != ListenerCount; ++I) {
    ListenerInfo Info;
    uint8_t Instr, Synth;
    if (!decodeId(R, Info.Name) || !R.u8(Instr) || !R.u8(Synth))
      return false;
    if (Info.Name.isValid() && Info.Name.index() >= T.names().size())
      return false;
    Info.Instrumented = Instr != 0;
    T.addListener(Info);
    SynthListener.push_back(Synth != 0);
  }

  uint64_t FrameCount;
  if (!R.u64(FrameCount) || FrameCount > MaxDecodeCount)
    return false;
  for (uint64_t I = 0; I != FrameCount; ++I) {
    uint64_t F;
    if (!R.u64(F))
      return false;
    SeenFrameIds.insert(F);
  }

  return true;
}
