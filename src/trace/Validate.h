//===- trace/Validate.h - Trace well-formedness checking -------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural validation of traces before analysis.  The happens-before
/// builder assumes several invariants (begin/end bracketing, events sent
/// before they begin, serialized events per looper, balanced frames and
/// locks); validating them up front turns silent analyzer corruption into
/// clear diagnostics, which matters when traces come from files.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_TRACE_VALIDATE_H
#define CAFA_TRACE_VALIDATE_H

#include "support/Status.h"
#include "trace/Trace.h"

namespace cafa {

/// Relaxations of individual invariants, used by the salvage pipeline.
struct ValidateOptions {
  /// Accept a non-external event whose begin is not preceded by a
  /// send/sendAtFront naming it.  The salvage parser admits such events
  /// when the send line was lost to corruption: the event merely loses
  /// its send edge, which is conservative for race detection (fewer
  /// happens-before edges can only surface more candidate pairs, never
  /// hide one).
  bool AllowUnsentEvents = false;
};

/// Checks all trace invariants; returns the first violation found.
///
/// Invariants checked:
///  - every task with records starts with TaskBegin and, if ended, ends
///    with TaskEnd; no records outside the begin/end bracket;
///  - timestamps are nondecreasing along the record stream;
///  - every non-external event's begin is preceded by exactly one
///    send/sendAtFront naming it, on the queue the task table declares;
///  - events on the same queue never interleave (looper atomicity);
///  - fork/join reference thread tasks; a joined thread has ended;
///  - lock acquire/release and method enter/exit are properly nested per
///    task, and frame ids are unique per invocation.
Status validateTrace(const Trace &T);

/// Same, with selected invariants relaxed per \p Options.
Status validateTrace(const Trace &T, const ValidateOptions &Options);

} // namespace cafa

#endif // CAFA_TRACE_VALIDATE_H
