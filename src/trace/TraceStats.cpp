//===- trace/TraceStats.cpp - Summary statistics for a trace --------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/TraceStats.h"

#include "support/Format.h"

#include <algorithm>
#include <sstream>

using namespace cafa;

TraceStats cafa::computeTraceStats(const Trace &T) {
  TraceStats Stats;
  Stats.NumRecords = T.numRecords();
  Stats.EventsPerQueue.assign(T.numQueues(), 0);

  for (uint32_t I = 0, E = static_cast<uint32_t>(T.numTasks()); I != E;
       ++I) {
    const TaskInfo &Info = T.taskInfo(TaskId(I));
    if (Info.Kind == TaskKind::Event) {
      ++Stats.NumEvents;
      if (Info.External)
        ++Stats.NumExternalEvents;
      if (Info.SentAtFront)
        ++Stats.NumFrontEvents;
      if (Info.Queue.isValid() &&
          Info.Queue.index() < Stats.EventsPerQueue.size())
        ++Stats.EventsPerQueue[Info.Queue.index()];
    } else {
      ++Stats.NumThreads;
    }
  }

  for (const TraceRecord &Rec : T.records()) {
    ++Stats.KindCounts[static_cast<unsigned>(Rec.Kind)];
    if (Rec.isFree())
      ++Stats.NumFrees;
    if (Rec.isAllocation())
      ++Stats.NumAllocations;
    Stats.EndTime = std::max(Stats.EndTime, Rec.Time);
  }
  return Stats;
}

std::string cafa::renderTraceStats(const TraceStats &Stats) {
  std::ostringstream OS;
  OS << "records: " << withThousandsSep(Stats.NumRecords)
     << "  events: " << withThousandsSep(Stats.NumEvents)
     << "  threads: " << Stats.NumThreads
     << "  external: " << Stats.NumExternalEvents
     << "  at-front: " << Stats.NumFrontEvents
     << "  frees: " << Stats.NumFrees
     << "  allocs: " << Stats.NumAllocations << '\n';
  OS << "per-kind:";
  for (unsigned I = 0; I != NumOpKinds; ++I) {
    if (Stats.KindCounts[I] == 0)
      continue;
    OS << ' ' << opKindName(static_cast<OpKind>(I)) << '='
       << Stats.KindCounts[I];
  }
  OS << '\n';
  return OS.str();
}
