//===- trace/TraceRecord.h - One operation in an execution -----*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace operation vocabulary.
///
/// This is the paper's Figure 3 grammar (begin/end, rd/wr, fork/join,
/// wait/notify, send/sendAtFront, register/perform) extended with the
/// operations CAFA's instrumentation adds in Section 5: object-pointer
/// reads and writes (from which uses, frees and allocations are derived),
/// dereferences, the three guarded branch instructions, method
/// enter/exit (the calling-context stack), lock acquire/release (for
/// lockset checking -- deliberately *not* a happens-before source), and
/// Binder IPC send/receive pairs correlated by transaction id.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_TRACE_TRACERECORD_H
#define CAFA_TRACE_TRACERECORD_H

#include "support/Ids.h"

#include <cstdint>

namespace cafa {

/// The kind of a trace operation.
enum class OpKind : uint8_t {
  /// Task lifecycle: emitted when a task (thread or event) starts/ends.
  TaskBegin,
  TaskEnd,
  /// Scalar memory access: arg0 = VarId, arg1 = value.
  Read,
  Write,
  /// Thread management: arg0 = TaskId of the forked/joined thread.
  Fork,
  Join,
  /// Condition synchronization: arg0 = MonitorId.
  Wait,
  Notify,
  /// Event generation: arg0 = TaskId of the event, arg1 = delay in
  /// milliseconds (Send only), arg2 = QueueId.
  Send,
  SendAtFront,
  /// Listener lifecycle: arg0 = ListenerId.
  RegisterListener,
  PerformListener,
  /// Mutual exclusion: arg0 = LockId.  Locks contribute locksets, not
  /// happens-before edges (Section 3.1).
  LockAcquire,
  LockRelease,
  /// Binder IPC: arg0 = TransactionId.
  IpcSend,
  IpcRecv,
  /// Object-pointer read (i-get-object family): arg0 = VarId of the
  /// pointer cell, arg1 = ObjectId read (0 = null).
  PtrRead,
  /// Object-pointer write (i-put-object family): arg0 = VarId, arg1 =
  /// ObjectId written (0 = null, i.e. a *free*; nonzero = *allocation*).
  PtrWrite,
  /// Dereference of an object: arg0 = ObjectId, arg1 = DerefKind.
  Deref,
  /// Pointer-testing branch logged per the if-guard convention: arg0 =
  /// BranchKind, arg1 = ObjectId tested, arg2 = target pc.  Emitted only
  /// on the outcome that proves the pointer non-null on the continuing
  /// path (if-eqz: not taken; if-nez / if-eq: taken).
  Branch,
  /// Calling-context stack: arg0 = frame id unique per invocation;
  /// MethodExit arg1 = 1 when exiting by exception throw.
  MethodEnter,
  MethodExit,
};

/// Returns a stable lowercase mnemonic for \p Kind (used by the text
/// serialization and diagnostics).
const char *opKindName(OpKind Kind);

/// Parses \p Name back into an OpKind; returns false on unknown names.
bool opKindFromName(const char *Name, OpKind &KindOut);

/// Number of distinct OpKind values (for stats arrays).
constexpr unsigned NumOpKinds = static_cast<unsigned>(OpKind::MethodExit) + 1;

/// Sub-kind for OpKind::Branch.
enum class BranchKind : uint8_t {
  IfEqz, ///< jump if pointer is null
  IfNez, ///< jump if pointer is non-null
  IfEq,  ///< jump if two pointers are equal (commonly `== this`)
};

/// Sub-kind for OpKind::Deref.
enum class DerefKind : uint8_t {
  FieldAccess, ///< read or write of a field of the object
  Invoke,      ///< virtual method invocation on the object
};

/// One operation performed by one task.
///
/// Records are fixed-size; the meaning of Arg0..Arg2 depends on Kind as
/// documented on \ref OpKind.  Pc/Method locate the bytecode instruction
/// that produced the record (0/invalid for runtime-emitted records such as
/// TaskBegin).  Time is the simulated timestamp; records appear in the
/// trace in a valid linearization of the execution.
struct TraceRecord {
  TaskId Task;
  OpKind Kind = OpKind::TaskBegin;
  MethodId Method;
  uint32_t Pc = 0;
  uint64_t Arg0 = 0;
  uint64_t Arg1 = 0;
  uint64_t Arg2 = 0;
  uint64_t Time = 0;

  // --- Typed accessors (asserted in debug builds via the call sites). ---

  VarId var() const { return VarId(static_cast<uint32_t>(Arg0)); }
  ObjectId object() const { return ObjectId(static_cast<uint32_t>(Arg1)); }
  ObjectId derefObject() const {
    return ObjectId(static_cast<uint32_t>(Arg0));
  }
  TaskId targetTask() const { return TaskId(static_cast<uint32_t>(Arg0)); }
  uint64_t delayMs() const { return Arg1; }
  QueueId queue() const { return QueueId(static_cast<uint32_t>(Arg2)); }
  MonitorId monitor() const { return MonitorId(static_cast<uint32_t>(Arg0)); }
  ListenerId listener() const {
    return ListenerId(static_cast<uint32_t>(Arg0));
  }
  LockId lock() const { return LockId(static_cast<uint32_t>(Arg0)); }
  TransactionId transaction() const {
    return TransactionId(static_cast<uint32_t>(Arg0));
  }
  BranchKind branchKind() const { return static_cast<BranchKind>(Arg0); }
  ObjectId branchObject() const {
    return ObjectId(static_cast<uint32_t>(Arg1));
  }
  uint32_t branchTargetPc() const { return static_cast<uint32_t>(Arg2); }
  DerefKind derefKind() const { return static_cast<DerefKind>(Arg1); }
  uint64_t frameId() const { return Arg0; }
  bool exitedByThrow() const { return Arg1 != 0; }

  /// Returns true for a pointer write of null -- the paper's *free*.
  bool isFree() const {
    return Kind == OpKind::PtrWrite && Arg1 == 0;
  }
  /// Returns true for a pointer write of a valid object -- an *allocation*.
  bool isAllocation() const {
    return Kind == OpKind::PtrWrite && Arg1 != 0;
  }
};

} // namespace cafa

#endif // CAFA_TRACE_TRACERECORD_H
