//===- trace/TraceTextFormat.h - Shared text-format helpers ----*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal helpers shared by the strict parser (TraceIO.cpp) and the
/// salvage engine (SalvageEngine.cpp): the v1 magic line, name escaping,
/// tokenization and bounded integer parsing.  Not installed; include only
/// from src/trace.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_TRACE_TRACETEXTFORMAT_H
#define CAFA_TRACE_TRACETEXTFORMAT_H

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

namespace cafa {
namespace tracetext {

inline constexpr const char MagicLine[] = "cafa-trace v1";

/// Names may contain spaces in principle; we escape spaces and backslashes
/// so each header line stays whitespace-separated.
inline std::string escapeName(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == ' ') {
      Out += "\\s";
    } else if (C == '\\') {
      Out += "\\\\";
    } else {
      Out.push_back(C);
    }
  }
  return Out;
}

inline std::string unescapeName(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (size_t I = 0; I != S.size(); ++I) {
    if (S[I] == '\\' && I + 1 < S.size()) {
      ++I;
      Out.push_back(S[I] == 's' ? ' ' : S[I]);
      continue;
    }
    Out.push_back(S[I]);
  }
  return Out;
}

/// Splits one line into whitespace-separated tokens.
inline std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Tokens;
  std::istringstream IS(Line);
  std::string Tok;
  while (IS >> Tok)
    Tokens.push_back(Tok);
  return Tokens;
}

inline bool parseU32(const std::string &S, uint32_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (End == S.c_str() || *End != '\0' || V > 0xFFFFFFFFull)
    return false;
  Out = static_cast<uint32_t>(V);
  return true;
}

inline bool parseU64(const std::string &S, uint64_t &Out) {
  char *End = nullptr;
  Out = std::strtoull(S.c_str(), &End, 10);
  return End != S.c_str() && *End == '\0';
}

template <typename IdT> IdT idFromRaw(uint32_t Raw) {
  return Raw == 0xFFFFFFFFu ? IdT::invalid() : IdT(Raw);
}

template <typename IdT> uint32_t idOrSentinel(IdT Id) {
  return Id.isValid() ? Id.value() : 0xFFFFFFFFu;
}

} // namespace tracetext
} // namespace cafa

#endif // CAFA_TRACE_TRACETEXTFORMAT_H
