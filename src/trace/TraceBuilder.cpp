//===- trace/TraceBuilder.cpp - Fluent construction of traces ----------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/TraceBuilder.h"

#include <cassert>

using namespace cafa;

QueueId TraceBuilder::addQueue(const std::string &Name) {
  QueueInfo Info;
  Info.Name = T.names().intern(Name);
  return T.addQueue(Info);
}

TaskId TraceBuilder::addThread(const std::string &Name) {
  TaskInfo Info;
  Info.Kind = TaskKind::Thread;
  Info.Name = T.names().intern(Name);
  return T.addTask(Info);
}

TaskId TraceBuilder::addEvent(const std::string &Name, QueueId Queue,
                              uint64_t DelayMs, bool AtFront,
                              bool External) {
  TaskInfo Info;
  Info.Kind = TaskKind::Event;
  Info.Name = T.names().intern(Name);
  Info.Queue = Queue;
  Info.DelayMs = DelayMs;
  Info.SentAtFront = AtFront;
  Info.External = External;
  return T.addTask(Info);
}

MethodId TraceBuilder::addMethod(const std::string &Name,
                                 uint32_t CodeSize) {
  MethodInfo Info;
  Info.Name = T.names().intern(Name);
  Info.CodeSize = CodeSize;
  return T.addMethod(Info);
}

ListenerId TraceBuilder::addListener(const std::string &Name,
                                     bool Instrumented) {
  ListenerInfo Info;
  Info.Name = T.names().intern(Name);
  Info.Instrumented = Instrumented;
  return T.addListener(Info);
}

TraceBuilder &TraceBuilder::append(TaskId Task, OpKind Kind, uint64_t A0,
                                   uint64_t A1, uint64_t A2,
                                   MethodId Method, uint32_t Pc) {
  assert(Task.isValid() && "record needs a task");
  TraceRecord Rec;
  Rec.Task = Task;
  Rec.Kind = Kind;
  Rec.Method = Method;
  Rec.Pc = Pc;
  Rec.Arg0 = A0;
  Rec.Arg1 = A1;
  Rec.Arg2 = A2;
  Rec.Time = ++Clock;
  T.append(Rec);
  return *this;
}

uint32_t TraceBuilder::lastRecord() const {
  assert(T.numRecords() > 0 && "no records appended yet");
  return static_cast<uint32_t>(T.numRecords() - 1);
}

TraceBuilder &TraceBuilder::begin(TaskId Task) {
  return append(Task, OpKind::TaskBegin);
}
TraceBuilder &TraceBuilder::end(TaskId Task) {
  return append(Task, OpKind::TaskEnd);
}
TraceBuilder &TraceBuilder::send(TaskId Task, TaskId Event,
                                 uint64_t DelayMs) {
  const TaskInfo &Info = T.taskInfo(Event);
  assert(Info.Kind == TaskKind::Event && "send target must be an event");
  return append(Task, OpKind::Send, Event.value(), DelayMs,
                Info.Queue.value());
}
TraceBuilder &TraceBuilder::sendAtFront(TaskId Task, TaskId Event) {
  const TaskInfo &Info = T.taskInfo(Event);
  assert(Info.Kind == TaskKind::Event && "send target must be an event");
  return append(Task, OpKind::SendAtFront, Event.value(), 0,
                Info.Queue.value());
}
TraceBuilder &TraceBuilder::fork(TaskId Task, TaskId Thread) {
  return append(Task, OpKind::Fork, Thread.value());
}
TraceBuilder &TraceBuilder::join(TaskId Task, TaskId Thread) {
  return append(Task, OpKind::Join, Thread.value());
}
TraceBuilder &TraceBuilder::wait(TaskId Task, uint32_t Monitor) {
  return append(Task, OpKind::Wait, Monitor);
}
TraceBuilder &TraceBuilder::notify(TaskId Task, uint32_t Monitor) {
  return append(Task, OpKind::Notify, Monitor);
}
TraceBuilder &TraceBuilder::registerListener(TaskId Task,
                                             ListenerId Listener) {
  return append(Task, OpKind::RegisterListener, Listener.value());
}
TraceBuilder &TraceBuilder::performListener(TaskId Task,
                                            ListenerId Listener) {
  return append(Task, OpKind::PerformListener, Listener.value());
}
TraceBuilder &TraceBuilder::lockAcquire(TaskId Task, uint32_t Lock) {
  return append(Task, OpKind::LockAcquire, Lock);
}
TraceBuilder &TraceBuilder::lockRelease(TaskId Task, uint32_t Lock) {
  return append(Task, OpKind::LockRelease, Lock);
}
TraceBuilder &TraceBuilder::ipcSend(TaskId Task, uint32_t Transaction) {
  return append(Task, OpKind::IpcSend, Transaction);
}
TraceBuilder &TraceBuilder::ipcRecv(TaskId Task, uint32_t Transaction) {
  return append(Task, OpKind::IpcRecv, Transaction);
}
TraceBuilder &TraceBuilder::read(TaskId Task, uint32_t Var,
                                 uint64_t Value) {
  return append(Task, OpKind::Read, Var, Value);
}
TraceBuilder &TraceBuilder::write(TaskId Task, uint32_t Var,
                                  uint64_t Value) {
  return append(Task, OpKind::Write, Var, Value);
}
TraceBuilder &TraceBuilder::ptrRead(TaskId Task, uint32_t Var,
                                    uint32_t Object, MethodId Method,
                                    uint32_t Pc) {
  return append(Task, OpKind::PtrRead, Var, Object, 0, Method, Pc);
}
TraceBuilder &TraceBuilder::ptrWrite(TaskId Task, uint32_t Var,
                                     uint32_t Object, MethodId Method,
                                     uint32_t Pc) {
  return append(Task, OpKind::PtrWrite, Var, Object, 0, Method, Pc);
}
TraceBuilder &TraceBuilder::deref(TaskId Task, uint32_t Object,
                                  DerefKind Kind, MethodId Method,
                                  uint32_t Pc) {
  return append(Task, OpKind::Deref, Object,
                static_cast<uint64_t>(Kind), 0, Method, Pc);
}
TraceBuilder &TraceBuilder::branch(TaskId Task, BranchKind Kind,
                                   uint32_t Object, MethodId Method,
                                   uint32_t Pc, uint32_t TargetPc) {
  return append(Task, OpKind::Branch, static_cast<uint64_t>(Kind), Object,
                TargetPc, Method, Pc);
}
TraceBuilder &TraceBuilder::methodEnter(TaskId Task, MethodId Method,
                                        uint64_t Frame) {
  return append(Task, OpKind::MethodEnter, Frame, 0, 0, Method);
}
TraceBuilder &TraceBuilder::methodExit(TaskId Task, MethodId Method,
                                       uint64_t Frame, bool ByThrow) {
  return append(Task, OpKind::MethodExit, Frame, ByThrow ? 1 : 0, 0,
                Method);
}
