//===- trace/SalvageEngine.h - Lex/admit split for salvage -----*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal machinery behind IngestSession's salvage mode, split along
/// the only line that keeps parallel ingestion deterministic:
///
///  - lexShard() does every piece of per-line work that needs no parser
///    state: splitting a byte range into lines, tokenizing, numeric
///    parsing, classifying the directive, and interning names into a
///    shard-private StringInterner.  It is a pure function of the shard
///    bytes, so shards can be lexed concurrently in any order.
///
///  - SalvageMachine makes every *stateful* decision — drop vs repair vs
///    synthesize, error budgets, placeholder backfill, timestamp
///    clamping — consuming LexedLines strictly in original byte order.
///    Both the single-threaded and the sharded paths run this exact
///    machine over the exact same lexed stream, which is what makes the
///    merged output bit-identical at every thread count *by
///    construction* rather than by after-the-fact reconciliation.
///
/// Shard-private name ids are rebuilt into the merged trace's dense id
/// space through a lazily memoized remap table (see remapName), interned
/// at the same control-flow points the historical single-pass parser
/// used, so even the interner's id assignment order is preserved.
///
/// The machine's full state (trace under construction, report, validator
/// mirrors) can round-trip through support/Snapshot, which is how the
/// merge phase checkpoints mid-ingest (docs/robustness.md).
///
/// Not installed; include only from src/trace.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_TRACE_SALVAGEENGINE_H
#define CAFA_TRACE_SALVAGEENGINE_H

#include "support/Status.h"
#include "support/StringInterner.h"
#include "trace/IngestSession.h"
#include "trace/Trace.h"

#include <string_view>
#include <unordered_set>
#include <vector>

namespace cafa {

class SnapshotReader;
class SnapshotWriter;

namespace ingest {

/// What a line lexed into, before any stateful decision.
enum class LineKind : uint8_t {
  Blank,    ///< blank / comment / whitespace-only (emitted for RelLine 1
            ///< only, so the machine can run its first-line logic)
  Magic,    ///< exactly the 'cafa-trace v1' header line
  Unknown,  ///< unrecognized directive; Token holds it
  Drop,     ///< structurally malformed; DropMsg is the diagnostic
  Rec,
  Method,
  Queue,
  Listener,
  Task,
};

/// One lexed input line.  Field meaning depends on Kind:
///  - Method:   Id, Name, Aux = code size
///  - Queue:    Id, Name, Aux = raw looper task id
///  - Listener: Id, Name, Aux = instrumented flag
///  - Task:     Id, Name, TaskFlags, Aux2 = process, Pc = raw handler,
///              QueueRef = raw queue, Parent = raw parent, Arg0 = delay ms
///  - Rec:      Id = raw task, Op, Aux = raw method, Pc, Arg0..Arg2, Time
struct LexedLine {
  uint32_t RelLine = 0; ///< 1-based line number within the shard
  LineKind Kind = LineKind::Blank;
  OpKind Op = OpKind::TaskBegin;
  uint8_t TaskFlags = 0; ///< Task lines: see TaskFlag* below
  const char *DropMsg = nullptr; ///< Drop lines: static diagnostic text
  StrId Name;                    ///< decl name in the shard interner
  std::string Token;             ///< Unknown lines: the directive
  uint32_t Id = 0;
  uint32_t Aux = 0;
  uint32_t Aux2 = 0;
  uint32_t Pc = 0;
  uint32_t QueueRef = 0;
  uint32_t Parent = 0;
  uint64_t Arg0 = 0;
  uint64_t Arg1 = 0;
  uint64_t Arg2 = 0;
  uint64_t Time = 0;
};

inline constexpr uint8_t TaskFlagEvent = 1 << 0;
inline constexpr uint8_t TaskFlagFront = 1 << 1;
inline constexpr uint8_t TaskFlagExternal = 1 << 2;
inline constexpr uint8_t TaskFlagLooper = 1 << 3;

/// The lexed form of one shard: the stateless parse of a byte range.
struct ShardFragment {
  StringInterner Names;        ///< shard-private interner
  std::vector<LexedLine> Lines; ///< admissible lines, in byte order
  uint64_t LineCount = 0;       ///< ALL lines in the shard, incl. skipped
  bool EndsWithoutNewline = false; ///< shard text lacks a final '\n'
};

/// Lexes \p Text (one shard, cut at line boundaries except possibly the
/// final shard's tail) into \p Out.  Pure: no shared state, thread-safe.
void lexShard(std::string_view Text, ShardFragment &Out);

/// The stateful salvage pipeline: consumes LexedLines in original byte
/// order and applies the drop/repair/synthesize policy documented in
/// docs/robustness.md, byte-compatible with the historical TraceReader.
class SalvageMachine {
public:
  explicit SalvageMachine(const SalvageOptions &Options);

  /// Starts consuming a new shard whose names live in \p ShardNames.
  void beginShard(const StringInterner &ShardNames);

  /// Admits the next lexed line of the current shard.  No-op once the
  /// machine has hard-failed.
  void admit(const LexedLine &L);

  /// Ends the current shard, advancing the global line counter by the
  /// shard's full line count (lexing skips blank lines; numbering must
  /// not).
  void endShard(uint64_t ShardLineCount);

  /// Records that the input did not end in a newline.
  void noteTruncatedFinalLine() { Report.TruncatedFinalLine = true; }

  /// End-of-input repairs + budget checks; moves the result out.
  /// \p ReportOut is filled even on failure; \p Out only on success.
  Status finish(Trace &Out, IngestReport &ReportOut);

  bool failed() const { return Failed; }

  /// Global 1-based number of the last line consumed (shards ended).
  uint64_t lineBase() const { return LineBase; }

  /// Serializes the complete machine state (trace under construction,
  /// report, validator mirrors).  Must not be called after a hard fail.
  void encodeState(SnapshotWriter &W) const;

  /// Rebuilds the machine from \p R into this freshly constructed
  /// instance.  Returns false on a malformed payload; the machine is
  /// then unusable and must be discarded.
  bool decodeState(SnapshotReader &R);

private:
  // --- Configuration & lifecycle ---------------------------------------
  SalvageOptions Opt;
  Trace T;
  IngestReport Report;
  bool Failed = false;
  Status Fail = Status::success();

  uint64_t LineBase = 0; ///< lines consumed in fully ended shards
  uint64_t LineNo = 0;   ///< global number of the line being admitted
  bool SeenFirstLine = false;

  // --- Shard name remapping --------------------------------------------
  const StringInterner *ShardNames = nullptr;
  std::vector<StrId> NameRemap; ///< shard StrId -> merged StrId, memoized

  StrId remapName(StrId ShardId);

  // --- Validator state mirror (see TraceReader provenance notes) -------
  struct TaskState {
    bool Begun = false;
    bool Ended = false;
    std::vector<uint64_t> LockStack;
    std::vector<uint64_t> FrameStack;
  };
  std::vector<TaskState> States;
  std::vector<bool> EventSent;
  std::vector<bool> SynthTask;
  std::vector<bool> SynthQueue;
  std::vector<bool> SynthMethod;
  std::vector<bool> SynthListener;
  std::vector<TaskId> ActiveEvent;
  std::unordered_set<uint64_t> SeenFrameIds;
  uint64_t LastTime = 0;

  // --- Accounting -------------------------------------------------------
  void hardFail(const std::string &Msg);
  void diag(size_t Ln, const std::string &Msg);
  void incident(size_t Ln, const std::string &Msg);
  void dropLine(size_t Ln, const std::string &Msg);

  // --- Side-table growth ------------------------------------------------
  bool budgetFor(uint64_t Needed);
  void pushTask(const TaskInfo &Info, bool Synth);
  void pushQueue(const QueueInfo &Info, bool Synth);
  void pushMethod(const MethodInfo &Info, bool Synth);
  void pushListener(const ListenerInfo &Info, bool Synth);
  bool padTasks(uint64_t Count);
  bool padQueues(uint64_t Count);
  bool padMethods(uint64_t Count);
  bool padListeners(uint64_t Count);
  bool notePaddedGap(bool Padded, size_t Ln, const char *What, uint32_t Id);

  // --- Record synthesis -------------------------------------------------
  void synthRecord(TaskId Task, OpKind Kind, uint64_t A0 = 0);
  void unwindStacks(TaskId Task);
  void synthEnd(TaskId Task);
  void fixEventQueue(TaskId Task, size_t Ln);
  void prepareBegin(TaskId Task, size_t Ln);
  void synthBegin(TaskId Task, size_t Ln);

  // --- Line handling ----------------------------------------------------
  void admitRecord(const TraceRecord &Rec, bool Repaired,
                   const std::string &Note, size_t Ln);
  void handleMethod(const LexedLine &L, size_t Ln);
  void handleQueue(const LexedLine &L, size_t Ln);
  void handleListener(const LexedLine &L, size_t Ln);
  void handleTask(const LexedLine &L, size_t Ln);
  void handleRec(const LexedLine &L, size_t Ln);
};

/// Strict parser implementation behind IngestMode::Parse and
/// readTraceFile() (defined in TraceIO.cpp).
Status parseTraceImpl(std::string_view Text, Trace &Out);

} // namespace ingest
} // namespace cafa

#endif // CAFA_TRACE_SALVAGEENGINE_H
