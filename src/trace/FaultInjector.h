//===- trace/FaultInjector.h - Deterministic trace corruption --*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic corruption of serialized traces, modelling the ways a
/// logger-device stream gets damaged in practice: the connection drops
/// mid-record (truncation), bytes flip in transit, the log rotates away a
/// line, a retry duplicates one, buffering reorders neighbours, or a
/// foreign process interleaves garbage.
///
/// Used by the fault-injection test harness (tests/trace) to assert the
/// salvage pipeline's contract: no mutation may crash the analyzer, and
/// every record the corruption did not touch must survive ingestion.
/// Mutations are pure functions of (input, kind, seed) -- identical calls
/// yield identical corrupted traces on every platform -- so a failing
/// seed is directly replayable.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_TRACE_FAULTINJECTOR_H
#define CAFA_TRACE_FAULTINJECTOR_H

#include <cstdint>
#include <string>

namespace cafa {

/// One family of trace corruption.
enum class FaultKind : uint8_t {
  TruncateAtOffset,  ///< cut the stream at a random byte offset
  BitFlipByte,       ///< flip one random bit of one random byte
  DropLine,          ///< delete one random line
  DuplicateLine,     ///< repeat one random line immediately
  SwapAdjacentLines, ///< exchange two neighbouring lines
  GarbageLine,       ///< insert a line of random printable noise
  GarbageBytes,      ///< overwrite a short random span with random bytes
  CorruptField,      ///< replace one whitespace-separated field of a line
};

/// Number of distinct FaultKind values (for sweep loops).
constexpr unsigned NumFaultKinds =
    static_cast<unsigned>(FaultKind::CorruptField) + 1;

/// Returns a stable lowercase name for \p Kind (for test diagnostics).
const char *faultKindName(FaultKind Kind);

/// A corrupted trace plus a replayable description of the damage.
struct InjectedFault {
  std::string Text;        ///< the mutated stream
  std::string Description; ///< what was damaged, for failure messages
};

/// Applies one \p Kind mutation to \p Text, deterministically derived
/// from \p Seed.  The input is never modified; inputs too small for the
/// requested mutation come back unchanged with a description saying so.
InjectedFault injectFault(const std::string &Text, FaultKind Kind,
                          uint64_t Seed);

} // namespace cafa

#endif // CAFA_TRACE_FAULTINJECTOR_H
