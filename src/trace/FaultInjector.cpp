//===- trace/FaultInjector.cpp - Deterministic trace corruption -----------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/FaultInjector.h"

#include "support/Format.h"
#include "support/Rng.h"

#include <cstddef>
#include <vector>

using namespace cafa;

const char *cafa::faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::TruncateAtOffset:
    return "truncate-at-offset";
  case FaultKind::BitFlipByte:
    return "bit-flip-byte";
  case FaultKind::DropLine:
    return "drop-line";
  case FaultKind::DuplicateLine:
    return "duplicate-line";
  case FaultKind::SwapAdjacentLines:
    return "swap-adjacent-lines";
  case FaultKind::GarbageLine:
    return "garbage-line";
  case FaultKind::GarbageBytes:
    return "garbage-bytes";
  case FaultKind::CorruptField:
    return "corrupt-field";
  }
  return "unknown";
}

namespace {

/// Splits \p Text into lines *including* their trailing newline, so that
/// re-joining the pieces reproduces the input byte for byte.
std::vector<std::string> splitKeepNewlines(const std::string &Text) {
  std::vector<std::string> Lines;
  size_t Start = 0;
  while (Start < Text.size()) {
    size_t NL = Text.find('\n', Start);
    if (NL == std::string::npos) {
      Lines.push_back(Text.substr(Start));
      break;
    }
    Lines.push_back(Text.substr(Start, NL - Start + 1));
    Start = NL + 1;
  }
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines)
    Out += L;
  return Out;
}

/// Picks a victim line index, skipping line 0 (the header) when there is
/// a choice: damaging the header exercises one fixed code path, and every
/// kind already covers it via TruncateAtOffset/GarbageBytes at offset 0.
size_t pickLine(Rng &R, size_t NumLines) {
  if (NumLines <= 1)
    return 0;
  return 1 + static_cast<size_t>(R.below(NumLines - 1));
}

char randomPrintable(Rng &R) {
  return static_cast<char>('!' + R.below('~' - '!' + 1));
}

InjectedFault unchanged(const std::string &Text, const char *Why) {
  return {Text, formatString("input unchanged (%s)", Why)};
}

} // namespace

InjectedFault cafa::injectFault(const std::string &Text, FaultKind Kind,
                                uint64_t Seed) {
  // Mix the kind into the seed so sweeping kinds at a fixed seed still
  // explores distinct offsets.
  Rng R(Seed * 1000003ull + static_cast<uint64_t>(Kind));

  switch (Kind) {
  case FaultKind::TruncateAtOffset: {
    if (Text.empty())
      return unchanged(Text, "empty input");
    size_t Cut = static_cast<size_t>(R.below(Text.size()));
    return {Text.substr(0, Cut),
            formatString("truncated to %zu of %zu bytes", Cut, Text.size())};
  }

  case FaultKind::BitFlipByte: {
    if (Text.empty())
      return unchanged(Text, "empty input");
    size_t At = static_cast<size_t>(R.below(Text.size()));
    unsigned Bit = static_cast<unsigned>(R.below(8));
    std::string Out = Text;
    Out[At] = static_cast<char>(Out[At] ^ (1u << Bit));
    return {std::move(Out),
            formatString("flipped bit %u of byte %zu ('%c' -> 0x%02x)", Bit,
                         At, Text[At], static_cast<unsigned char>(
                                           Text[At] ^ (1u << Bit)))};
  }

  case FaultKind::DropLine: {
    std::vector<std::string> Lines = splitKeepNewlines(Text);
    if (Lines.size() < 2)
      return unchanged(Text, "too few lines");
    size_t At = pickLine(R, Lines.size());
    std::string Victim = Lines[At];
    Lines.erase(Lines.begin() + static_cast<ptrdiff_t>(At));
    return {joinLines(Lines),
            formatString("dropped line %zu: %s", At + 1, Victim.c_str())};
  }

  case FaultKind::DuplicateLine: {
    std::vector<std::string> Lines = splitKeepNewlines(Text);
    if (Lines.empty())
      return unchanged(Text, "empty input");
    size_t At = pickLine(R, Lines.size());
    Lines.insert(Lines.begin() + static_cast<ptrdiff_t>(At), Lines[At]);
    return {joinLines(Lines), formatString("duplicated line %zu", At + 1)};
  }

  case FaultKind::SwapAdjacentLines: {
    std::vector<std::string> Lines = splitKeepNewlines(Text);
    if (Lines.size() < 3)
      return unchanged(Text, "too few lines");
    // Pick the first of the swapped pair among lines 1..n-2.
    size_t At = 1 + static_cast<size_t>(R.below(Lines.size() - 2));
    std::swap(Lines[At], Lines[At + 1]);
    return {joinLines(Lines),
            formatString("swapped lines %zu and %zu", At + 1, At + 2)};
  }

  case FaultKind::GarbageLine: {
    std::vector<std::string> Lines = splitKeepNewlines(Text);
    std::string Noise;
    size_t Len = 1 + static_cast<size_t>(R.below(40));
    for (size_t I = 0; I != Len; ++I)
      Noise.push_back(randomPrintable(R));
    Noise.push_back('\n');
    size_t At = Lines.empty()
                    ? 0
                    : static_cast<size_t>(R.below(Lines.size() + 1));
    Lines.insert(Lines.begin() + static_cast<ptrdiff_t>(At), Noise);
    return {joinLines(Lines),
            formatString("inserted garbage line at %zu: %s", At + 1,
                         Noise.c_str())};
  }

  case FaultKind::GarbageBytes: {
    if (Text.empty())
      return unchanged(Text, "empty input");
    size_t At = static_cast<size_t>(R.below(Text.size()));
    size_t Len = 1 + static_cast<size_t>(R.below(16));
    if (At + Len > Text.size())
      Len = Text.size() - At;
    std::string Out = Text;
    for (size_t I = 0; I != Len; ++I)
      Out[At + I] = static_cast<char>(R.below(256));
    return {std::move(Out),
            formatString("overwrote %zu bytes at offset %zu with noise",
                         Len, At)};
  }

  case FaultKind::CorruptField: {
    std::vector<std::string> Lines = splitKeepNewlines(Text);
    if (Lines.size() < 2)
      return unchanged(Text, "too few lines");
    size_t At = pickLine(R, Lines.size());
    std::string &Line = Lines[At];
    // Find the whitespace-separated fields of the victim line.
    std::vector<std::pair<size_t, size_t>> Fields; // (begin, length)
    size_t I = 0;
    while (I < Line.size()) {
      while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\n'))
        ++I;
      size_t Begin = I;
      while (I < Line.size() && Line[I] != ' ' && Line[I] != '\n')
        ++I;
      if (I > Begin)
        Fields.push_back({Begin, I - Begin});
    }
    if (Fields.empty())
      return unchanged(Text, "victim line has no fields");
    auto [Begin, Len] =
        Fields[static_cast<size_t>(R.below(Fields.size()))];
    // Replace the field with either a huge number, a negative-looking
    // token, or short noise -- the classic corrupt-id shapes.
    std::string Replacement;
    switch (R.below(3)) {
    case 0:
      Replacement = formatString(
          "%llu", static_cast<unsigned long long>(R.next()));
      break;
    case 1:
      Replacement = "-1";
      break;
    default: {
      size_t N = 1 + static_cast<size_t>(R.below(6));
      for (size_t K = 0; K != N; ++K)
        Replacement.push_back(randomPrintable(R));
      break;
    }
    }
    std::string Old = Line.substr(Begin, Len);
    Line = Line.substr(0, Begin) + Replacement + Line.substr(Begin + Len);
    return {joinLines(Lines),
            formatString("line %zu: field '%s' -> '%s'", At + 1,
                         Old.c_str(), Replacement.c_str())};
  }
  }
  return unchanged(Text, "unknown fault kind");
}
