//===- trace/TraceStats.h - Summary statistics for a trace -----*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summary statistics over a trace (counts per operation kind, event and
/// thread totals, queue sizes).  The evaluation harness uses these for the
/// "Events" column of Table 1 and for scaling plots.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_TRACE_TRACESTATS_H
#define CAFA_TRACE_TRACESTATS_H

#include "trace/Trace.h"

#include <array>
#include <string>
#include <vector>

namespace cafa {

/// Aggregated counts over one trace.
struct TraceStats {
  /// Record count per OpKind.
  std::array<uint64_t, NumOpKinds> KindCounts{};
  /// Total records.
  uint64_t NumRecords = 0;
  /// Tasks of kind Event.
  uint64_t NumEvents = 0;
  /// Tasks of kind Thread.
  uint64_t NumThreads = 0;
  /// Events marked external.
  uint64_t NumExternalEvents = 0;
  /// Events enqueued with sendAtFront.
  uint64_t NumFrontEvents = 0;
  /// Events per queue, indexed by queue id.
  std::vector<uint64_t> EventsPerQueue;
  /// Frees (null pointer writes).
  uint64_t NumFrees = 0;
  /// Allocations (non-null pointer writes).
  uint64_t NumAllocations = 0;
  /// Simulated end time of the trace.
  uint64_t EndTime = 0;
};

/// Computes statistics for \p T in one pass.
TraceStats computeTraceStats(const Trace &T);

/// Renders \p Stats as a human-readable multi-line summary.
std::string renderTraceStats(const TraceStats &Stats);

} // namespace cafa

#endif // CAFA_TRACE_TRACESTATS_H
