//===- trace/TraceReader.cpp - Streaming salvage trace parser -------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The salvage parser merges three passes the strict pipeline runs
// separately -- parsing, validation, and (new here) repair -- because a
// sound repair decision needs the running validation state: whether the
// task has begun, what it holds locked, which event owns its queue.  Each
// input line is either admitted (possibly after an in-place fixup),
// admitted together with synthesized bookkeeping records that restore an
// invariant, or dropped.  Synthesized records are restricted to kinds the
// detectors never report on (begin/end, lock release/acquire, method
// enter/exit), so salvage can widen the candidate space but cannot invent
// an access.
//
//===----------------------------------------------------------------------===//

#include "trace/TraceReader.h"

#include "support/Format.h"
#include "trace/TraceTextFormat.h"

#include <algorithm>
#include <fstream>
#include <unordered_set>

using namespace cafa;
using namespace cafa::tracetext;

namespace {
constexpr uint32_t SentinelId = 0xFFFFFFFFu;
} // namespace

std::string IngestReport::summary() const {
  std::string S = formatString(
      "ingest: %llu lines, %llu records kept, %llu lines dropped, "
      "%llu repaired, %llu synthesized",
      static_cast<unsigned long long>(LinesTotal),
      static_cast<unsigned long long>(RecordsKept),
      static_cast<unsigned long long>(LinesDropped),
      static_cast<unsigned long long>(RecordsRepaired),
      static_cast<unsigned long long>(RecordsSynthesized));
  if (TableEntriesSynthesized)
    S += formatString(", %llu placeholder table entries",
                      static_cast<unsigned long long>(TableEntriesSynthesized));
  if (UnsentEventBegins)
    S += formatString(", %llu unsent event begins",
                      static_cast<unsigned long long>(UnsentEventBegins));
  if (MissingHeader)
    S += ", header missing";
  if (TruncatedFinalLine)
    S += ", final line truncated";
  for (const IngestDiagnostic &D : Diagnostics) {
    if (D.LineNo)
      S += formatString("\n  line %zu: %s", D.LineNo, D.Message.c_str());
    else
      S += formatString("\n  end of input: %s", D.Message.c_str());
  }
  if (IncidentsTotal > Diagnostics.size())
    S += formatString(
        "\n  ... and %llu more incidents",
        static_cast<unsigned long long>(IncidentsTotal - Diagnostics.size()));
  S += '\n';
  return S;
}

struct TraceReader::Impl {
  SalvageOptions Opt;
  Trace T;
  IngestReport Report;
  bool Failed = false;
  Status Fail = Status::success();
  bool Finished = false;

  std::string Pending; ///< partial line carried across feed() chunks
  size_t LineNo = 0;
  bool SeenFirstLine = false;

  /// Mirror of the validator's per-task running state.
  struct TaskState {
    bool Begun = false;
    bool Ended = false;
    std::vector<uint64_t> LockStack;
    std::vector<uint64_t> FrameStack;
  };
  std::vector<TaskState> States;       // parallel to the task table
  std::vector<bool> EventSent;         // parallel to the task table
  std::vector<bool> SynthTask;         // entry is a placeholder we invented
  std::vector<bool> SynthQueue;
  std::vector<bool> SynthMethod;
  std::vector<bool> SynthListener;
  std::vector<TaskId> ActiveEvent;     // parallel to the queue table
  std::unordered_set<uint64_t> SeenFrameIds;
  uint64_t LastTime = 0;

  explicit Impl(const SalvageOptions &O) : Opt(O) {}

  // --- Accounting -------------------------------------------------------

  void hardFail(const std::string &Msg) {
    if (!Failed) {
      Failed = true;
      Fail = Status::error(Msg);
    }
  }

  void diag(size_t Ln, const std::string &Msg) {
    if (Report.Diagnostics.size() < Opt.MaxDiagnostics)
      Report.Diagnostics.push_back({Ln, Msg});
  }

  void incident(size_t Ln, const std::string &Msg) {
    ++Report.IncidentsTotal;
    diag(Ln, Msg);
    if (Opt.Strict)
      hardFail(Ln ? formatString("strict mode: line %zu: %s", Ln, Msg.c_str())
                  : formatString("strict mode: %s", Msg.c_str()));
  }

  void dropLine(size_t Ln, const std::string &Msg) {
    incident(Ln, Msg);
    ++Report.LinesDropped;
    if (Report.LinesDropped > Opt.MaxDroppedLines)
      hardFail(formatString(
          "error budget exceeded: %llu lines dropped (cap %llu)",
          static_cast<unsigned long long>(Report.LinesDropped),
          static_cast<unsigned long long>(Opt.MaxDroppedLines)));
  }

  // --- Side-table growth ------------------------------------------------

  bool budgetFor(uint64_t Needed) {
    return Report.TableEntriesSynthesized + Needed <=
           Opt.MaxSynthesizedEntries;
  }

  void pushTask(const TaskInfo &Info, bool Synth) {
    T.addTask(Info);
    States.emplace_back();
    EventSent.push_back(false);
    SynthTask.push_back(Synth);
  }
  void pushQueue(const QueueInfo &Info, bool Synth) {
    T.addQueue(Info);
    ActiveEvent.push_back(TaskId::invalid());
    SynthQueue.push_back(Synth);
  }
  void pushMethod(const MethodInfo &Info, bool Synth) {
    T.addMethod(Info);
    SynthMethod.push_back(Synth);
  }
  void pushListener(const ListenerInfo &Info, bool Synth) {
    T.addListener(Info);
    SynthListener.push_back(Synth);
  }

  bool padTasks(uint64_t Count) {
    if (Count <= T.numTasks())
      return true;
    uint64_t Needed = Count - T.numTasks();
    if (!budgetFor(Needed))
      return false;
    Report.TableEntriesSynthesized += Needed;
    while (T.numTasks() < Count)
      pushTask(TaskInfo(), true);
    return true;
  }
  bool padQueues(uint64_t Count) {
    if (Count <= T.numQueues())
      return true;
    uint64_t Needed = Count - T.numQueues();
    if (!budgetFor(Needed))
      return false;
    Report.TableEntriesSynthesized += Needed;
    while (T.numQueues() < Count)
      pushQueue(QueueInfo(), true);
    return true;
  }
  bool padMethods(uint64_t Count) {
    if (Count <= T.numMethods())
      return true;
    uint64_t Needed = Count - T.numMethods();
    if (!budgetFor(Needed))
      return false;
    Report.TableEntriesSynthesized += Needed;
    while (T.numMethods() < Count)
      pushMethod(MethodInfo(), true);
    return true;
  }
  bool padListeners(uint64_t Count) {
    if (Count <= T.numListeners())
      return true;
    uint64_t Needed = Count - T.numListeners();
    if (!budgetFor(Needed))
      return false;
    Report.TableEntriesSynthesized += Needed;
    while (T.numListeners() < Count)
      pushListener(ListenerInfo(), true);
    return true;
  }

  // --- Record synthesis -------------------------------------------------

  void synthRecord(TaskId Task, OpKind Kind, uint64_t A0 = 0) {
    TraceRecord R;
    R.Task = Task;
    R.Kind = Kind;
    R.Arg0 = A0;
    R.Time = LastTime;
    T.append(R);
    ++Report.RecordsSynthesized;
  }

  /// Synthesizes the releases/exits that empty both per-task stacks.
  void unwindStacks(TaskId Task) {
    TaskState &S = States[Task.index()];
    while (!S.FrameStack.empty()) {
      synthRecord(Task, OpKind::MethodExit, S.FrameStack.back());
      S.FrameStack.pop_back();
    }
    while (!S.LockStack.empty()) {
      synthRecord(Task, OpKind::LockRelease, S.LockStack.back());
      S.LockStack.pop_back();
    }
  }

  /// Synthesizes a well-formed terminator for a begun, unended task.
  void synthEnd(TaskId Task) {
    unwindStacks(Task);
    synthRecord(Task, OpKind::TaskEnd);
    States[Task.index()].Ended = true;
    const TaskInfo &Info = T.taskInfo(Task);
    if (Info.Kind == TaskKind::Event && Info.Queue.isValid() &&
        Info.Queue.index() < ActiveEvent.size() &&
        ActiveEvent[Info.Queue.index()] == Task)
      ActiveEvent[Info.Queue.index()] = TaskId::invalid();
  }

  /// Makes an event's queue reference usable (placeholder queue within
  /// budget, else demotion to a plain thread).
  void fixEventQueue(TaskId Task, size_t Ln) {
    TaskInfo &Info = T.taskInfoMutable(Task);
    if (Info.Kind != TaskKind::Event)
      return;
    if (Info.Queue.isValid() && Info.Queue.index() < T.numQueues())
      return;
    if (Info.Queue.isValid() &&
        padQueues(static_cast<uint64_t>(Info.Queue.index()) + 1)) {
      incident(Ln, formatString(
                       "task %u: undeclared queue %u; synthesized a "
                       "placeholder",
                       Task.value(), Info.Queue.value()));
      return;
    }
    Info.Kind = TaskKind::Thread;
    Info.Queue = QueueId::invalid();
    incident(Ln, formatString(
                     "task %u: event with no usable queue demoted to a "
                     "thread",
                     Task.value()));
  }

  /// Restores every invariant a TaskBegin for \p Task depends on.
  void prepareBegin(TaskId Task, size_t Ln) {
    fixEventQueue(Task, Ln);
    const TaskInfo &Info = T.taskInfo(Task);
    if (Info.Kind != TaskKind::Event)
      return;
    uint32_t Q = Info.Queue.index();
    if (ActiveEvent[Q].isValid()) {
      incident(Ln, formatString(
                       "queue %u: event %u still open; synthesized its "
                       "terminator",
                       Q, ActiveEvent[Q].value()));
      synthEnd(ActiveEvent[Q]);
    }
    if (!Info.External && !EventSent[Task.index()]) {
      ++Report.UnsentEventBegins;
      incident(Ln, formatString("event %u begins without a send record",
                                Task.value()));
    }
  }

  void synthBegin(TaskId Task, size_t Ln) {
    prepareBegin(Task, Ln);
    synthRecord(Task, OpKind::TaskBegin);
    States[Task.index()].Begun = true;
    const TaskInfo &Info = T.taskInfo(Task);
    if (Info.Kind == TaskKind::Event)
      ActiveEvent[Info.Queue.index()] = Task;
  }

  // --- Line handling ----------------------------------------------------

  void feedImpl(std::string_view Chunk) {
    if (Failed || Finished)
      return;
    size_t Start = 0;
    while (Start <= Chunk.size()) {
      size_t NL = Chunk.find('\n', Start);
      if (NL == std::string_view::npos) {
        Pending.append(Chunk.substr(Start));
        return;
      }
      Pending.append(Chunk.substr(Start, NL - Start));
      std::string Line;
      Line.swap(Pending);
      processLine(std::move(Line));
      Start = NL + 1;
      if (Failed)
        return;
    }
  }

  void processLine(std::string Line) {
    if (Failed)
      return;
    ++LineNo;
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    if (!SeenFirstLine) {
      SeenFirstLine = true;
      if (Line == MagicLine)
        return;
      Report.MissingHeader = true;
      diag(LineNo, "missing 'cafa-trace v1' header");
      if (Opt.Strict) {
        hardFail("strict mode: missing or unrecognized trace header; "
                 "expected 'cafa-trace v1'");
        return;
      }
      // Fall through: the first line may itself be a directive.
    }
    if (Line.empty() || Line[0] == '#')
      return;
    std::vector<std::string> Tok = tokenize(Line);
    if (Tok.empty())
      return;
    ++Report.LinesTotal;
    const std::string &D = Tok[0];
    if (D == "rec")
      handleRec(Tok, LineNo);
    else if (D == "method")
      handleMethod(Tok, LineNo);
    else if (D == "queue")
      handleQueue(Tok, LineNo);
    else if (D == "listener")
      handleListener(Tok, LineNo);
    else if (D == "task")
      handleTask(Tok, LineNo);
    else
      dropLine(LineNo, formatString("unknown directive '%s'", D.c_str()));
  }

  // --- Side-table directives --------------------------------------------

  void handleMethod(const std::vector<std::string> &Tok, size_t Ln) {
    if (Tok.size() != 4) {
      dropLine(Ln, "malformed method line");
      return;
    }
    uint32_t Id, CodeSize;
    if (!parseU32(Tok[1], Id) || !parseU32(Tok[3], CodeSize)) {
      dropLine(Ln, "bad number in method line");
      return;
    }
    MethodInfo Info;
    if (Tok[2] != "-")
      Info.Name = T.names().intern(unescapeName(Tok[2]));
    Info.CodeSize = CodeSize;
    if (Id < T.numMethods()) {
      if (!SynthMethod[Id]) {
        dropLine(Ln, formatString("method %u re-declared", Id));
        return;
      }
      T.methodInfoMutable(MethodId(Id)) = Info;
      SynthMethod[Id] = false;
      incident(Ln, formatString(
                       "method %u declared out of order; backfilled the "
                       "placeholder",
                       Id));
      return;
    }
    if (Id > T.numMethods()) {
      if (!notePaddedGap(padMethods(Id), Ln, "method", Id))
        return;
    }
    pushMethod(Info, false);
  }

  void handleQueue(const std::vector<std::string> &Tok, size_t Ln) {
    if (Tok.size() != 4) {
      dropLine(Ln, "malformed queue line");
      return;
    }
    uint32_t Id, Looper;
    if (!parseU32(Tok[1], Id) || !parseU32(Tok[3], Looper)) {
      dropLine(Ln, "bad number in queue line");
      return;
    }
    QueueInfo Info;
    if (Tok[2] != "-")
      Info.Name = T.names().intern(unescapeName(Tok[2]));
    Info.Looper = idFromRaw<TaskId>(Looper);
    if (Id < T.numQueues()) {
      if (!SynthQueue[Id]) {
        dropLine(Ln, formatString("queue %u re-declared", Id));
        return;
      }
      T.queueInfoMutable(QueueId(Id)) = Info;
      SynthQueue[Id] = false;
      incident(Ln, formatString(
                       "queue %u declared out of order; backfilled the "
                       "placeholder",
                       Id));
      return;
    }
    if (Id > T.numQueues()) {
      if (!notePaddedGap(padQueues(Id), Ln, "queue", Id))
        return;
    }
    pushQueue(Info, false);
  }

  void handleListener(const std::vector<std::string> &Tok, size_t Ln) {
    if (Tok.size() != 4) {
      dropLine(Ln, "malformed listener line");
      return;
    }
    uint32_t Id, Instr;
    if (!parseU32(Tok[1], Id) || !parseU32(Tok[3], Instr)) {
      dropLine(Ln, "bad number in listener line");
      return;
    }
    ListenerInfo Info;
    if (Tok[2] != "-")
      Info.Name = T.names().intern(unescapeName(Tok[2]));
    Info.Instrumented = Instr != 0;
    if (Id < T.numListeners()) {
      if (!SynthListener[Id]) {
        dropLine(Ln, formatString("listener %u re-declared", Id));
        return;
      }
      T.listenerInfoMutable(ListenerId(Id)) = Info;
      SynthListener[Id] = false;
      incident(Ln, formatString(
                       "listener %u declared out of order; backfilled the "
                       "placeholder",
                       Id));
      return;
    }
    if (Id > T.numListeners()) {
      if (!notePaddedGap(padListeners(Id), Ln, "listener", Id))
        return;
    }
    pushListener(Info, false);
  }

  void handleTask(const std::vector<std::string> &Tok, size_t Ln) {
    if (Tok.size() != 12) {
      dropLine(Ln, "malformed task line");
      return;
    }
    uint32_t Id, Process, Queue, Handler, Front, External, Parent, Looper;
    uint64_t DelayMs;
    if (!parseU32(Tok[1], Id) || !parseU32(Tok[4], Process) ||
        !parseU32(Tok[5], Queue) || !parseU32(Tok[6], Handler) ||
        !parseU64(Tok[7], DelayMs) || !parseU32(Tok[8], Front) ||
        !parseU32(Tok[9], External) || !parseU32(Tok[10], Parent) ||
        !parseU32(Tok[11], Looper)) {
      dropLine(Ln, "bad number in task line");
      return;
    }
    TaskInfo Info;
    if (Tok[2] == "thread") {
      Info.Kind = TaskKind::Thread;
    } else if (Tok[2] == "event") {
      Info.Kind = TaskKind::Event;
    } else {
      dropLine(Ln, "task kind must be 'thread' or 'event'");
      return;
    }
    if (Tok[3] != "-")
      Info.Name = T.names().intern(unescapeName(Tok[3]));
    Info.Process = idFromRaw<ProcessId>(Process);
    Info.Queue = idFromRaw<QueueId>(Queue);
    Info.Handler = idFromRaw<MethodId>(Handler);
    Info.DelayMs = DelayMs;
    Info.SentAtFront = Front != 0;
    Info.External = External != 0;
    Info.Parent = idFromRaw<TaskId>(Parent);
    Info.IsLooper = Looper != 0;
    if (Id < T.numTasks()) {
      // Backfill is only sound while nothing has committed to the
      // placeholder's identity (no records, no send naming it).
      if (!SynthTask[Id] || States[Id].Begun || EventSent[Id]) {
        dropLine(Ln, formatString("task %u re-declared", Id));
        return;
      }
      T.taskInfoMutable(TaskId(Id)) = Info;
      SynthTask[Id] = false;
      incident(Ln, formatString(
                       "task %u declared out of order; backfilled the "
                       "placeholder",
                       Id));
      return;
    }
    if (Id > T.numTasks()) {
      if (!notePaddedGap(padTasks(Id), Ln, "task", Id))
        return;
    }
    pushTask(Info, false);
  }

  /// Shared accounting for dense-id gaps in side-table declarations.
  bool notePaddedGap(bool Padded, size_t Ln, const char *What,
                         uint32_t Id) {
    if (!Padded) {
      dropLine(Ln, formatString(
                       "gap before %s %u exceeds the synthesis budget",
                       What, Id));
      return false;
    }
    incident(Ln,
             formatString("gap before %s %u; synthesized placeholders",
                          What, Id));
    return true;
  }

  // --- Record directives ------------------------------------------------

  void admit(const TraceRecord &Rec, bool Repaired,
             const std::string &Note, size_t Ln) {
    T.append(Rec);
    ++Report.RecordsKept;
    LastTime = Rec.Time;
    if (Repaired) {
      ++Report.RecordsRepaired;
      incident(Ln, Note);
    }
  }

  void handleRec(const std::vector<std::string> &Tok, size_t Ln) {
    if (Tok.size() != 9) {
      dropLine(Ln, "malformed rec line");
      return;
    }
    uint32_t TaskRaw, MethodRaw, Pc;
    uint64_t A0, A1, A2, Time;
    OpKind Kind;
    if (!parseU32(Tok[1], TaskRaw) || !opKindFromName(Tok[2].c_str(), Kind) ||
        !parseU32(Tok[3], MethodRaw) || !parseU32(Tok[4], Pc) ||
        !parseU64(Tok[5], A0) || !parseU64(Tok[6], A1) ||
        !parseU64(Tok[7], A2) || !parseU64(Tok[8], Time)) {
      dropLine(Ln, "bad field in rec line");
      return;
    }
    if (TaskRaw == SentinelId) {
      dropLine(Ln, "rec with invalid task id");
      return;
    }
    if (TaskRaw >= T.numTasks()) {
      if (!padTasks(static_cast<uint64_t>(TaskRaw) + 1)) {
        dropLine(Ln, formatString(
                         "rec references undeclared task %u beyond the "
                         "synthesis budget",
                         TaskRaw));
        return;
      }
      incident(Ln, formatString(
                       "rec references undeclared task %u; synthesized "
                       "placeholder tasks",
                       TaskRaw));
    }
    TaskId Task(TaskRaw);

    bool Repaired = false;
    std::string RepairNote;
    auto noteRepair = [&](const std::string &Msg) {
      Repaired = true;
      if (!RepairNote.empty())
        RepairNote += "; ";
      RepairNote += Msg;
    };

    if (Time < LastTime) {
      Time = LastTime;
      noteRepair("timestamp regressed; clamped");
    }

    TraceRecord Rec;
    Rec.Task = Task;
    Rec.Kind = Kind;
    Rec.Method = idFromRaw<MethodId>(MethodRaw);
    Rec.Pc = Pc;
    Rec.Arg0 = A0;
    Rec.Arg1 = A1;
    Rec.Arg2 = A2;
    Rec.Time = Time;

    // Non-branch records survive an unknown method (report rendering
    // tolerates it); branches are handled in their case below because the
    // guard machinery indexes the method table.
    if (Kind != OpKind::Branch && Rec.Method.isValid() &&
        Rec.Method.index() >= T.numMethods()) {
      Rec.Method = MethodId::invalid();
      noteRepair(formatString("unknown method %u cleared", MethodRaw));
    }

    // Task lifecycle framing.
    if (Kind == OpKind::TaskBegin) {
      if (States[TaskRaw].Begun || States[TaskRaw].Ended) {
        dropLine(Ln, "duplicate task begin");
        return;
      }
      prepareBegin(Task, Ln);
      admit(Rec, Repaired, RepairNote, Ln);
      States[TaskRaw].Begun = true;
      const TaskInfo &Info = T.taskInfo(Task);
      if (Info.Kind == TaskKind::Event)
        ActiveEvent[Info.Queue.index()] = Task;
      return;
    }
    if (States[TaskRaw].Ended) {
      dropLine(Ln, "operation after task end");
      return;
    }
    if (!States[TaskRaw].Begun) {
      incident(Ln, formatString(
                       "task %u operates before its begin; synthesized one",
                       TaskRaw));
      synthBegin(Task, Ln);
      if (Failed)
        return;
    }

    switch (Kind) {
    case OpKind::TaskBegin:
      return; // handled above

    case OpKind::TaskEnd: {
      TaskState &S = States[TaskRaw];
      if (!S.LockStack.empty() || !S.FrameStack.empty()) {
        noteRepair(formatString(
            "task ends holding %zu locks / %zu frames; synthesized the "
            "balance",
            S.LockStack.size(), S.FrameStack.size()));
        unwindStacks(Task);
      }
      admit(Rec, Repaired, RepairNote, Ln);
      S.Ended = true;
      const TaskInfo &Info = T.taskInfo(Task);
      if (Info.Kind == TaskKind::Event && Info.Queue.isValid() &&
          Info.Queue.index() < ActiveEvent.size() &&
          ActiveEvent[Info.Queue.index()] == Task)
        ActiveEvent[Info.Queue.index()] = TaskId::invalid();
      return;
    }

    case OpKind::Send:
    case OpKind::SendAtFront: {
      if (A0 >= SentinelId) {
        dropLine(Ln, "send with unusable target id");
        return;
      }
      uint32_t Target = static_cast<uint32_t>(A0);
      if (Target >= T.numTasks()) {
        if (!padTasks(static_cast<uint64_t>(Target) + 1)) {
          dropLine(Ln, formatString(
                           "send target %u beyond the synthesis budget",
                           Target));
          return;
        }
        noteRepair(formatString(
            "send target %u undeclared; synthesized a placeholder",
            Target));
      }
      TaskInfo &TI = T.taskInfoMutable(TaskId(Target));
      if (TI.Kind != TaskKind::Event) {
        if (SynthTask[Target] && !States[Target].Begun) {
          TI.Kind = TaskKind::Event;
          noteRepair(formatString("placeholder task %u assumed to be an "
                                  "event",
                                  Target));
        } else {
          dropLine(Ln, "send target is not an event");
          return;
        }
      }
      if (EventSent[Target]) {
        dropLine(Ln, "event sent twice");
        return;
      }
      if (States[Target].Begun) {
        dropLine(Ln, "event sent after it began");
        return;
      }
      if (TI.Queue.isValid() && TI.Queue.index() < T.numQueues()) {
        if (Rec.Arg2 != TI.Queue.value()) {
          Rec.Arg2 = TI.Queue.value();
          noteRepair("send queue rewritten to the task table's");
        }
      } else if (A2 < SentinelId && padQueues(A2 + 1)) {
        TI.Queue = QueueId(static_cast<uint32_t>(A2));
        noteRepair("task-table queue adopted from the send record");
      } else {
        dropLine(Ln, "send with no usable queue");
        return;
      }
      EventSent[Target] = true;
      admit(Rec, Repaired, RepairNote, Ln);
      return;
    }

    case OpKind::Fork: {
      if (A0 >= SentinelId) {
        dropLine(Ln, "fork with unusable target id");
        return;
      }
      uint32_t Target = static_cast<uint32_t>(A0);
      if (Target >= T.numTasks()) {
        if (!padTasks(static_cast<uint64_t>(Target) + 1)) {
          dropLine(Ln, formatString(
                           "fork target %u beyond the synthesis budget",
                           Target));
          return;
        }
        noteRepair(formatString(
            "fork target %u undeclared; synthesized a placeholder",
            Target));
      }
      if (T.taskInfo(TaskId(Target)).Kind != TaskKind::Thread) {
        dropLine(Ln, "fork target is not a thread");
        return;
      }
      admit(Rec, Repaired, RepairNote, Ln);
      return;
    }

    case OpKind::Join: {
      if (A0 >= SentinelId) {
        dropLine(Ln, "join with unusable target id");
        return;
      }
      uint32_t Target = static_cast<uint32_t>(A0);
      if (Target >= T.numTasks()) {
        if (!padTasks(static_cast<uint64_t>(Target) + 1)) {
          dropLine(Ln, formatString(
                           "join target %u beyond the synthesis budget",
                           Target));
          return;
        }
        noteRepair(formatString(
            "join target %u undeclared; synthesized a placeholder",
            Target));
      }
      if (T.taskInfo(TaskId(Target)).Kind != TaskKind::Thread) {
        dropLine(Ln, "join target is not a thread");
        return;
      }
      if (!States[Target].Ended) {
        noteRepair(formatString(
            "join of unended thread %u; synthesized its end", Target));
        if (!States[Target].Begun)
          synthBegin(TaskId(Target), Ln);
        synthEnd(TaskId(Target));
      }
      admit(Rec, Repaired, RepairNote, Ln);
      return;
    }

    case OpKind::Wait:
    case OpKind::Notify:
      // The HB builder sizes per-monitor arrays by the largest id seen;
      // a corrupted id must not conjure a multi-gigabyte allocation.
      if (A0 > Opt.MaxEntityId) {
        dropLine(Ln, "monitor id out of bounds");
        return;
      }
      admit(Rec, Repaired, RepairNote, Ln);
      return;

    case OpKind::Read:
    case OpKind::Write:
    case OpKind::PtrRead:
    case OpKind::PtrWrite:
      // The detector sizes its frees-by-variable index by the largest
      // variable id seen.
      if (A0 > Opt.MaxEntityId) {
        dropLine(Ln, "variable id out of bounds");
        return;
      }
      admit(Rec, Repaired, RepairNote, Ln);
      return;

    case OpKind::Deref:
    case OpKind::IpcSend:
    case OpKind::IpcRecv:
      admit(Rec, Repaired, RepairNote, Ln);
      return;

    case OpKind::Branch:
      if (A0 > 2) {
        dropLine(Ln, "unknown branch kind");
        return;
      }
      if (A2 > 0xFFFFFFFFull) {
        dropLine(Ln, "branch target pc out of range");
        return;
      }
      if (!Rec.Method.isValid() || Rec.Method.index() >= T.numMethods()) {
        dropLine(Ln, "branch outside any known method");
        return;
      }
      admit(Rec, Repaired, RepairNote, Ln);
      return;

    case OpKind::RegisterListener:
    case OpKind::PerformListener: {
      if (A0 >= SentinelId) {
        dropLine(Ln, "listener id out of bounds");
        return;
      }
      uint32_t L = static_cast<uint32_t>(A0);
      if (L >= T.numListeners()) {
        if (!padListeners(static_cast<uint64_t>(L) + 1)) {
          dropLine(Ln, formatString(
                           "listener %u beyond the synthesis budget", L));
          return;
        }
        noteRepair(formatString(
            "listener %u undeclared; synthesized a placeholder", L));
      }
      admit(Rec, Repaired, RepairNote, Ln);
      return;
    }

    case OpKind::LockAcquire:
      States[TaskRaw].LockStack.push_back(A0);
      admit(Rec, Repaired, RepairNote, Ln);
      return;

    case OpKind::LockRelease: {
      TaskState &S = States[TaskRaw];
      if (S.LockStack.empty() || S.LockStack.back() != A0) {
        bool Held = std::find(S.LockStack.begin(), S.LockStack.end(), A0) !=
                    S.LockStack.end();
        if (Held) {
          noteRepair("release out of order; synthesized releases for "
                     "inner locks");
          while (S.LockStack.back() != A0) {
            synthRecord(Task, OpKind::LockRelease, S.LockStack.back());
            S.LockStack.pop_back();
          }
        } else {
          noteRepair("release without acquire; synthesized one");
          synthRecord(Task, OpKind::LockAcquire, A0);
          S.LockStack.push_back(A0);
        }
      }
      S.LockStack.pop_back();
      admit(Rec, Repaired, RepairNote, Ln);
      return;
    }

    case OpKind::MethodEnter:
      if (!SeenFrameIds.insert(A0).second) {
        dropLine(Ln, "frame id reused");
        return;
      }
      States[TaskRaw].FrameStack.push_back(A0);
      admit(Rec, Repaired, RepairNote, Ln);
      return;

    case OpKind::MethodExit: {
      TaskState &S = States[TaskRaw];
      if (S.FrameStack.empty() || S.FrameStack.back() != A0) {
        bool Open = std::find(S.FrameStack.begin(), S.FrameStack.end(),
                              A0) != S.FrameStack.end();
        if (Open) {
          noteRepair("exit of an outer frame; synthesized exits for inner "
                     "frames");
          while (S.FrameStack.back() != A0) {
            synthRecord(Task, OpKind::MethodExit, S.FrameStack.back());
            S.FrameStack.pop_back();
          }
        } else if (SeenFrameIds.insert(A0).second) {
          noteRepair("exit without enter; synthesized one");
          synthRecord(Task, OpKind::MethodEnter, A0);
          S.FrameStack.push_back(A0);
        } else {
          dropLine(Ln, "unmatched method exit");
          return;
        }
      }
      S.FrameStack.pop_back();
      admit(Rec, Repaired, RepairNote, Ln);
      return;
    }
    }
  }

  // --- End of input -----------------------------------------------------

  Status finishImpl(Trace &Out, IngestReport &ReportOut) {
    if (Finished)
      return Status::error("TraceReader::finish() called twice");
    Finished = true;

    if (!Pending.empty()) {
      Report.TruncatedFinalLine = true;
      std::string Last;
      Last.swap(Pending);
      processLine(std::move(Last));
    }
    if (!SeenFirstLine && !Failed) {
      Report.MissingHeader = true;
      if (Opt.Strict)
        hardFail("strict mode: empty input");
    }

    // Close events the stream left open (trace truncated mid-handler).
    // Strict mode skips this: an unended task is legal in a validated
    // trace (the runtime stops logging after a fixed interaction window),
    // so strict accepts it unchanged.
    if (!Failed && !Opt.Strict && Opt.RepairTruncation) {
      for (uint32_t I = 0, E = static_cast<uint32_t>(T.numTasks()); I != E;
           ++I) {
        if (!States[I].Begun || States[I].Ended)
          continue;
        if (T.taskInfo(TaskId(I)).Kind != TaskKind::Event)
          continue;
        incident(0, formatString(
                        "input ended while event %u was executing; "
                        "synthesized its terminator",
                        I));
        synthEnd(TaskId(I));
      }
    }

    // Bound every dormant cross-reference so downstream dense indexing
    // stays in range even for tasks that never produced a record.
    if (!Failed && !Opt.Strict) {
      for (uint32_t I = 0, E = static_cast<uint32_t>(T.numTasks()); I != E;
           ++I) {
        TaskInfo &Info = T.taskInfoMutable(TaskId(I));
        if (Info.Queue.isValid() && Info.Queue.index() >= T.numQueues()) {
          Info.Queue = QueueId::invalid();
          if (Info.Kind == TaskKind::Event)
            Info.Kind = TaskKind::Thread;
          incident(0, formatString(
                          "task %u: dangling queue reference cleared", I));
        }
        if (Info.Parent.isValid() && Info.Parent.index() >= T.numTasks()) {
          Info.Parent = TaskId::invalid();
          incident(0, formatString(
                          "task %u: dangling parent reference cleared", I));
        }
        if (Info.Handler.isValid() &&
            Info.Handler.index() >= T.numMethods()) {
          Info.Handler = MethodId::invalid();
          incident(0, formatString(
                          "task %u: dangling handler reference cleared",
                          I));
        }
      }
      for (uint32_t I = 0, E = static_cast<uint32_t>(T.numQueues()); I != E;
           ++I) {
        QueueInfo &Info = T.queueInfoMutable(QueueId(I));
        if (Info.Looper.isValid() && Info.Looper.index() >= T.numTasks()) {
          Info.Looper = TaskId::invalid();
          incident(0, formatString(
                          "queue %u: dangling looper reference cleared",
                          I));
        }
      }
    }

    if (!Failed && Report.LinesTotal > 0) {
      double Ratio = static_cast<double>(Report.LinesDropped) /
                     static_cast<double>(Report.LinesTotal);
      if (Ratio > Opt.MaxDroppedRatio)
        hardFail(formatString(
            "error budget exceeded: dropped %llu of %llu lines "
            "(%.0f%% > %.0f%% cap)",
            static_cast<unsigned long long>(Report.LinesDropped),
            static_cast<unsigned long long>(Report.LinesTotal),
            Ratio * 100.0, Opt.MaxDroppedRatio * 100.0));
    }

    ReportOut = std::move(Report);
    if (Failed)
      return Fail;
    Out = std::move(T);
    return Status::success();
  }
};

TraceReader::TraceReader(const SalvageOptions &Options)
    : P(new Impl(Options)) {}

TraceReader::~TraceReader() = default;

void TraceReader::feed(std::string_view Chunk) { P->feedImpl(Chunk); }

Status TraceReader::finish(Trace &Out, IngestReport &ReportOut) {
  return P->finishImpl(Out, ReportOut);
}

Status cafa::salvageTrace(const std::string &Text, Trace &Out,
                          IngestReport &Report,
                          const SalvageOptions &Options) {
  TraceReader R(Options);
  R.feed(Text);
  return R.finish(Out, Report);
}

Status cafa::readTraceFileSalvaged(const std::string &Path, Trace &Out,
                                   IngestReport &Report,
                                   const SalvageOptions &Options) {
  std::ifstream IS(Path, std::ios::binary);
  if (!IS)
    return Status::error(
        formatString("cannot open '%s' for reading", Path.c_str()));
  TraceReader R(Options);
  char Buf[1 << 16];
  while (IS) {
    IS.read(Buf, sizeof(Buf));
    std::streamsize N = IS.gcount();
    if (N > 0)
      R.feed(std::string_view(Buf, static_cast<size_t>(N)));
  }
  return R.finish(Out, Report);
}
