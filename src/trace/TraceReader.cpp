//===- trace/TraceReader.cpp - Deprecated salvage entry points ------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Thin shims keeping the pre-IngestSession salvage API alive.  Everything
// forwards to an IngestSession pinned to one thread; the salvage policy
// itself lives in trace/SalvageEngine.cpp and is shared, so these
// wrappers cannot drift from the replacement they deprecate.
//
//===----------------------------------------------------------------------===//

// This TU *implements* the deprecated surface; compiling it must not warn.
#define CAFA_NO_DEPRECATION_WARNINGS

#include "trace/TraceReader.h"

using namespace cafa;

namespace {

IngestOptions wrapOptions(const SalvageOptions &Options) {
  IngestOptions O;
  O.Mode = IngestMode::Salvage;
  O.Salvage = Options;
  O.Threads = 1;
  return O;
}

} // namespace

struct TraceReader::Impl {
  IngestSession Session;
  bool Finished = false;

  explicit Impl(const SalvageOptions &Options)
      : Session(wrapOptions(Options)) {}
};

TraceReader::TraceReader(const SalvageOptions &Options)
    : P(new Impl(Options)) {}

TraceReader::~TraceReader() = default;

void TraceReader::feed(std::string_view Chunk) { P->Session.feed(Chunk); }

Status TraceReader::finish(Trace &Out, IngestReport &ReportOut) {
  // Preserve the historical double-finish message verbatim.
  if (P->Finished)
    return Status::error("TraceReader::finish() called twice");
  P->Finished = true;
  return P->Session.finish(Out, ReportOut);
}

Status cafa::salvageTrace(const std::string &Text, Trace &Out,
                          IngestReport &Report,
                          const SalvageOptions &Options) {
  return ingestTrace(Text, Out, Report, wrapOptions(Options));
}

Status cafa::readTraceFileSalvaged(const std::string &Path, Trace &Out,
                                   IngestReport &Report,
                                   const SalvageOptions &Options) {
  return ingestTraceFile(Path, Out, Report, wrapOptions(Options));
}
