//===- trace/Manifest.h - Fleet batch manifest parsing ---------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the manifest format the fleet supervisor consumes: a text file
/// naming one analysis job per line,
///
/// \code
///   # comment / blank lines ignored
///   traces/zxing-run1.trace              # job id derived from the path
///   nightly_todolist traces/todo.trace   # explicit job id, then path
/// \endcode
///
/// Job ids become checkpoint sub-directory names, so they are restricted
/// to [A-Za-z0-9._-] and must be unique within one manifest.  The same
/// trace path may appear under several ids (e.g. re-analysis under
/// different budgets).  Relative trace paths resolve against the
/// manifest's own directory, so a manifest can ship alongside its
/// corpus.  See docs/fleet.md.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_TRACE_MANIFEST_H
#define CAFA_TRACE_MANIFEST_H

#include "support/Status.h"

#include <string>
#include <vector>

namespace cafa {

/// One job named by a manifest.
struct ManifestEntry {
  std::string Id;        ///< unique, filesystem-safe
  std::string TracePath; ///< resolved trace file path
};

/// Returns \p Candidate with every character outside [A-Za-z0-9._-]
/// replaced by '_' (empty input comes back as "_").
std::string sanitizeJobId(const std::string &Candidate);

/// Derives the default id for the \p Index-th manifest line naming
/// \p TracePath: "j<index+1, 3 digits>_<sanitized basename sans
/// extension>".  The index prefix keeps repeated paths unique.
std::string deriveJobId(size_t Index, const std::string &TracePath);

/// Parses manifest \p Text.  Relative trace paths are prefixed with
/// \p BaseDir (empty leaves them as written).  Fails on malformed lines,
/// invalid explicit ids, and duplicate ids; on failure \p Out is left
/// empty.
Status parseManifest(const std::string &Text, const std::string &BaseDir,
                     std::vector<ManifestEntry> &Out);

/// Reads and parses the manifest file at \p Path; relative trace paths
/// resolve against the manifest's directory.
Status readManifestFile(const std::string &Path,
                        std::vector<ManifestEntry> &Out);

} // namespace cafa

#endif // CAFA_TRACE_MANIFEST_H
