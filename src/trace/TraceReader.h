//===- trace/TraceReader.h - Streaming salvage trace parser ----*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A streaming, fault-tolerant reader for the v1 trace text format.
///
/// Real logger-device streams pulled off phones arrive truncated (the app
/// crashed mid-trace), interleaved with foreign log lines, or corrupted in
/// transit.  parseTrace() aborts on the first offending byte; TraceReader
/// instead salvages everything that is still well-formed:
///
///  - malformed lines are dropped and parsing resynchronizes at the next
///    line boundary, under a configurable error budget;
///  - records that violate a structural invariant are *repaired* when a
///    sound repair exists (timestamps clamped monotone, missing task
///    begins/ends synthesized, unbalanced lock/frame pairs rebalanced,
///    dangling side-table references replaced by placeholder entries) and
///    dropped otherwise;
///  - a truncated tail is closed: events left open mid-execution get
///    synthesized terminator records so the result satisfies every
///    validateTrace() invariant (modulo ValidateOptions::AllowUnsentEvents
///    for events whose send line was lost);
///  - every decision is accounted in a structured IngestReport with the
///    first N diagnostics, so callers can triage what was lost.
///
/// All repairs err on the side of *fewer* happens-before edges and *no*
/// fabricated accesses: the reader never synthesizes a record kind the
/// detector can report a race on (only begin/end, lock, and method-frame
/// bookkeeping records), so a salvaged trace can surface extra candidate
/// pairs but never a race on data the stream did not contain.
///
/// See docs/robustness.md for the salvage policy and its guarantees.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_TRACE_TRACEREADER_H
#define CAFA_TRACE_TRACEREADER_H

#include "support/Status.h"
#include "trace/Trace.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cafa {

/// Tuning knobs for the salvage parser.
struct SalvageOptions {
  /// Treat every incident (drop or repair) as fatal: the reader then
  /// accepts exactly the traces that pass parseTrace() + validateTrace().
  bool Strict = false;
  /// Keep at most this many detailed diagnostics in the report (all
  /// incidents are still counted).
  uint32_t MaxDiagnostics = 16;
  /// Error budget, absolute: fail once more than this many lines have
  /// been dropped.
  uint64_t MaxDroppedLines = UINT64_MAX;
  /// Error budget, relative: fail (at finish) when more than this
  /// fraction of non-blank input lines was dropped.
  double MaxDroppedRatio = 0.5;
  /// Cap on placeholder side-table entries synthesized for dangling
  /// references; lines needing more are dropped instead (guards against
  /// a corrupted id conjuring a four-billion-entry table).
  uint32_t MaxSynthesizedEntries = 1 << 16;
  /// Upper bound on entity ids (monitors, pointer cells) the analyzer
  /// indexes dense arrays with; records above it are dropped.
  uint64_t MaxEntityId = 1 << 20;
  /// Synthesize terminator records for events left open at end of input
  /// (truncated traces).
  bool RepairTruncation = true;
};

/// One noteworthy decision made during salvage.
struct IngestDiagnostic {
  size_t LineNo = 0; ///< 1-based input line; 0 for end-of-input repairs.
  std::string Message;
};

/// What the salvage parser kept, dropped, and repaired.
struct IngestReport {
  uint64_t LinesTotal = 0;            ///< non-blank, non-comment lines seen
  uint64_t LinesDropped = 0;          ///< lines discarded entirely
  uint64_t RecordsKept = 0;           ///< input records admitted to the trace
  uint64_t RecordsRepaired = 0;       ///< admitted after an in-place fixup
  uint64_t RecordsSynthesized = 0;    ///< bookkeeping records fabricated
  uint64_t TableEntriesSynthesized = 0; ///< placeholder side-table rows
  uint64_t UnsentEventBegins = 0;     ///< events admitted without a send
  bool MissingHeader = false;         ///< no 'cafa-trace v1' first line
  bool TruncatedFinalLine = false;    ///< input ended without a newline
  uint64_t IncidentsTotal = 0;        ///< drops + repairs, all categories
  /// The first SalvageOptions::MaxDiagnostics incidents, with line numbers.
  std::vector<IngestDiagnostic> Diagnostics;

  /// True when the input parsed without a single drop or repair.
  bool clean() const { return IncidentsTotal == 0 && !MissingHeader; }

  /// Renders a human-readable multi-line summary, newline-terminated.
  std::string summary() const;
};

/// Streaming salvage parser.  Feed the stream in arbitrary chunks, then
/// finish() to run end-of-input repairs and take the trace.
class TraceReader {
public:
  explicit TraceReader(const SalvageOptions &Options = SalvageOptions());
  ~TraceReader();

  TraceReader(const TraceReader &) = delete;
  TraceReader &operator=(const TraceReader &) = delete;

  /// Consumes the next chunk of the stream.  Chunk boundaries need not
  /// align with lines; a partial trailing line is buffered.
  void feed(std::string_view Chunk);

  /// Flushes buffered input, applies truncation repairs, and moves the
  /// salvaged trace into \p Out.  Fails (leaving \p Out untouched) only
  /// in Strict mode or when the error budget was exceeded; \p ReportOut
  /// is filled either way.
  Status finish(Trace &Out, IngestReport &ReportOut);

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

/// One-shot convenience wrapper over TraceReader.
Status salvageTrace(const std::string &Text, Trace &Out,
                    IngestReport &Report,
                    const SalvageOptions &Options = SalvageOptions());

/// Reads \p Path and salvages it, streaming the file in chunks.
Status readTraceFileSalvaged(const std::string &Path, Trace &Out,
                             IngestReport &Report,
                             const SalvageOptions &Options = SalvageOptions());

} // namespace cafa

#endif // CAFA_TRACE_TRACEREADER_H
