//===- trace/TraceReader.h - Deprecated salvage entry points ---*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deprecated forwarding shims for the historical salvage entry points.
///
/// The streaming salvage parser that used to live here is now the salvage
/// mode of cafa::IngestSession (trace/IngestSession.h), which adds sharded
/// parallel lexing, crash-safe merge checkpoints, and a single options
/// struct covering both the strict and the salvage pipeline.  The types
/// the old API traded in (SalvageOptions, IngestDiagnostic, IngestReport)
/// moved to IngestSession.h unchanged; this header re-exports them via
/// the include.
///
/// Migration:
///   TraceReader R(Opt); R.feed(C); R.finish(T, Rep);
///     -> IngestOptions O; O.Salvage = Opt;
///        IngestSession S(O); S.feed(C); S.finish(T, Rep);
///   salvageTrace(Text, T, Rep, Opt)
///     -> IngestOptions O; O.Salvage = Opt; ingestTrace(Text, T, Rep, O);
///   readTraceFileSalvaged(Path, T, Rep, Opt)
///     -> IngestOptions O; O.Salvage = Opt;
///        ingestTraceFile(Path, T, Rep, O);
///
/// The wrappers pin Threads = 1; the replacement defaults to parallel
/// ingestion with bit-identical output, so migrating is strictly a
/// performance upgrade.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_TRACE_TRACEREADER_H
#define CAFA_TRACE_TRACEREADER_H

#include "support/Deprecated.h"
#include "support/Status.h"
#include "trace/IngestSession.h"
#include "trace/Trace.h"

#include <memory>
#include <string>
#include <string_view>

namespace cafa {

/// Streaming salvage parser.  Deprecated: construct an IngestSession in
/// IngestMode::Salvage instead (same feed/finish shape, adds parallel
/// lexing and ingest checkpoints).
class CAFA_DEPRECATED(
    "use cafa::IngestSession (trace/IngestSession.h); TraceReader is a "
    "single-threaded shim over it") TraceReader {
public:
  explicit TraceReader(const SalvageOptions &Options = SalvageOptions());
  ~TraceReader();

  TraceReader(const TraceReader &) = delete;
  TraceReader &operator=(const TraceReader &) = delete;

  /// Consumes the next chunk of the stream.  Chunk boundaries need not
  /// align with lines; a partial trailing line is buffered.
  void feed(std::string_view Chunk);

  /// Flushes buffered input, applies truncation repairs, and moves the
  /// salvaged trace into \p Out.  Fails (leaving \p Out untouched) only
  /// in Strict mode or when the error budget was exceeded; \p ReportOut
  /// is filled either way.
  Status finish(Trace &Out, IngestReport &ReportOut);

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

/// One-shot salvage.  Deprecated: use ingestTrace() with
/// IngestOptions::Salvage carrying \p Options.
CAFA_DEPRECATED("use cafa::ingestTrace (trace/IngestSession.h)")
Status salvageTrace(const std::string &Text, Trace &Out,
                    IngestReport &Report,
                    const SalvageOptions &Options = SalvageOptions());

/// One-shot file salvage.  Deprecated: use ingestTraceFile(), which also
/// honors IngestOptions::Resume for crash-safe re-ingestion.
CAFA_DEPRECATED("use cafa::ingestTraceFile (trace/IngestSession.h)")
Status readTraceFileSalvaged(const std::string &Path, Trace &Out,
                             IngestReport &Report,
                             const SalvageOptions &Options = SalvageOptions());

} // namespace cafa

#endif // CAFA_TRACE_TRACEREADER_H
