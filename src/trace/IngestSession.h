//===- trace/IngestSession.h - Unified trace ingestion API -----*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single public entry point for turning trace text into a Trace.
///
/// IngestSession subsumes the three historical entry points (parseTrace,
/// TraceReader, salvageTrace — their deprecated wrapper shims have since
/// been deleted): configure an IngestOptions, feed the stream in
/// arbitrary chunks (or point it at a file), then finish() to receive
/// the Trace and a structured IngestReport.
///
/// Two ingestion modes:
///  - IngestMode::Salvage (default): the fault-tolerant repair pipeline
///    documented in docs/robustness.md — malformed lines are dropped at
///    per-line resynchronization points under error budgets, structural
///    violations are repaired when a sound repair exists, and every
///    decision is accounted in the IngestReport;
///  - IngestMode::Parse: the historical strict parser — fail on the first
///    offending byte with a strong guarantee (the output Trace is
///    untouched on error).
///
/// Salvage mode shards the input into byte ranges aligned to line
/// boundaries and runs the expensive line-local work (tokenizing, numeric
/// parsing, name interning) in IngestOptions::Threads worker threads.
/// The stateful salvage decisions (drop/repair/synthesize) are made in a
/// deterministic merge pass over the lexed shards in original byte
/// order, so the resulting Trace and IngestReport are **bit-identical at
/// every thread count** — parallelism changes wall-clock time, nothing
/// else.  See docs/trace-format.md ("Sharded ingestion") for the
/// shard-boundary and id-remap design.
///
/// The merge pass can checkpoint its progress through the same
/// support/Snapshot layer the analysis pipeline uses (PR 3): give the
/// session a CheckpointDirectory and a crash mid-ingest resumes from the
/// last durable shard cut instead of re-reading the whole dump.  Resume
/// is only honored for file-based ingestion (feedFile), because the
/// session must re-verify that the already-merged prefix matches the
/// snapshot before skipping it.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_TRACE_INGESTSESSION_H
#define CAFA_TRACE_INGESTSESSION_H

#include "support/Status.h"
#include "trace/Trace.h"

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace cafa {

/// Tuning knobs for the salvage parser.
struct SalvageOptions {
  /// Treat every incident (drop or repair) as fatal: the reader then
  /// accepts exactly the traces that pass IngestMode::Parse +
  /// validateTrace().
  bool Strict = false;
  /// Keep at most this many detailed diagnostics in the report (all
  /// incidents are still counted).
  uint32_t MaxDiagnostics = 16;
  /// Error budget, absolute: fail once more than this many lines have
  /// been dropped.
  uint64_t MaxDroppedLines = UINT64_MAX;
  /// Error budget, relative: fail (at finish) when more than this
  /// fraction of non-blank input lines was dropped.
  double MaxDroppedRatio = 0.5;
  /// Cap on placeholder side-table entries synthesized for dangling
  /// references; lines needing more are dropped instead (guards against
  /// a corrupted id conjuring a four-billion-entry table).
  uint32_t MaxSynthesizedEntries = 1 << 16;
  /// Upper bound on entity ids (monitors, pointer cells) the analyzer
  /// indexes dense arrays with; records above it are dropped.
  uint64_t MaxEntityId = 1 << 20;
  /// Synthesize terminator records for events left open at end of input
  /// (truncated traces).
  bool RepairTruncation = true;
};

/// One noteworthy decision made during salvage.
struct IngestDiagnostic {
  size_t LineNo = 0; ///< 1-based input line; 0 for end-of-input repairs.
  std::string Message;
};

/// What the salvage parser kept, dropped, and repaired.
struct IngestReport {
  uint64_t LinesTotal = 0;            ///< non-blank, non-comment lines seen
  uint64_t LinesDropped = 0;          ///< lines discarded entirely
  uint64_t RecordsKept = 0;           ///< input records admitted to the trace
  uint64_t RecordsRepaired = 0;       ///< admitted after an in-place fixup
  uint64_t RecordsSynthesized = 0;    ///< bookkeeping records fabricated
  uint64_t TableEntriesSynthesized = 0; ///< placeholder side-table rows
  uint64_t UnsentEventBegins = 0;     ///< events admitted without a send
  bool MissingHeader = false;         ///< no 'cafa-trace v1' first line
  bool TruncatedFinalLine = false;    ///< input ended without a newline
  uint64_t IncidentsTotal = 0;        ///< drops + repairs, all categories
  /// The first SalvageOptions::MaxDiagnostics incidents, with line numbers.
  std::vector<IngestDiagnostic> Diagnostics;

  /// True when the input parsed without a single drop or repair.
  bool clean() const { return IncidentsTotal == 0 && !MissingHeader; }

  /// Renders a human-readable multi-line summary, newline-terminated.
  std::string summary() const;
};

/// Which parsing pipeline an IngestSession runs.
enum class IngestMode : uint8_t {
  Salvage, ///< fault-tolerant drop/repair/synthesize pipeline (default)
  Parse,   ///< strict: fail on the first offending byte, strong guarantee
};

/// Configuration for an IngestSession.
struct IngestOptions {
  IngestMode Mode = IngestMode::Salvage;

  /// Salvage-mode tuning knobs (ignored in Parse mode).
  SalvageOptions Salvage;

  /// Lexer worker threads for salvage mode.  0 means auto: the
  /// CAFA_INGEST_THREADS environment variable if set, else
  /// std::thread::hardware_concurrency().  The output is bit-identical
  /// at every thread count.
  unsigned Threads = 0;

  /// Target shard size in bytes; each shard is extended to the next
  /// line boundary.  Shard cuts depend only on the input bytes and this
  /// value, never on thread scheduling, so they are reproducible across
  /// runs (which checkpoint/resume relies on).
  uint64_t ShardBytes = 4ull << 20;

  /// When non-empty, the merge phase writes crash-safe progress
  /// snapshots ("ingest.snapshot") into this directory.  Coexists with
  /// the analysis checkpoint in the same directory.
  std::string CheckpointDirectory;

  /// Snapshot cadence: write a merge snapshot after at least this many
  /// input bytes have been merged since the last one.
  uint64_t CheckpointEveryBytes = 64ull << 20;

  /// Attempt to resume from an existing ingest snapshot.  Only honored
  /// by feedFile() (the already-merged prefix must be re-hashable);
  /// mismatches reject to a clean full restart, never a wrong merge.
  bool Resume = false;

  /// Testing hook: abort the merge with an error after this many shards
  /// (0 = disabled).  Simulates a crash mid-merge deterministically.
  uint32_t DebugAbortAfterShards = 0;

  /// Input size budget in bytes (0 = unlimited).  feedFile() fstat's the
  /// target and fails up front with a usage error when a regular file
  /// exceeds the budget, instead of letting a non-windowed analysis OOM
  /// halfway through the slurp.  Drivers set this from --mem-limit when
  /// no streaming window is active.
  uint64_t MaxInputBytes = 0;
};

/// What happened when IngestOptions::Resume asked for a resume.
struct IngestResumeOutcome {
  bool Attempted = false;  ///< Resume was requested and evaluated
  bool NoSnapshot = false; ///< no snapshot file existed (fresh run)
  bool Resumed = false;    ///< merge state restored from the snapshot
  /// Why a present snapshot was rejected (empty when unused/accepted).
  std::string RejectReason;
  uint64_t BytesSkipped = 0;  ///< input prefix covered by the snapshot
  uint64_t ShardsSkipped = 0; ///< shards already merged by the crashed run
};

/// Streaming trace ingestion.  Feed the input in arbitrary chunks (or
/// via feedFile), then finish() once to take the Trace and the report.
class IngestSession {
public:
  explicit IngestSession(const IngestOptions &Options = IngestOptions());
  ~IngestSession();

  IngestSession(const IngestSession &) = delete;
  IngestSession &operator=(const IngestSession &) = delete;

  /// Consumes the next chunk of the stream.  Chunk boundaries need not
  /// align with lines.
  void feed(std::string_view Chunk);

  /// Streams \p Path into the session.  This is the entry point that
  /// honors IngestOptions::Resume; it must be the session's only input
  /// source.  Returns an error if the file cannot be opened.
  Status feedFile(const std::string &Path);

  /// Completes ingestion: drains the workers, merges the remaining
  /// shards, applies end-of-input repairs, and moves the result into
  /// \p Out.  Fails (leaving \p Out untouched) in Parse mode on any
  /// syntax error, and in Salvage mode only under Strict or a blown
  /// error budget; \p ReportOut is filled either way in salvage mode.
  Status finish(Trace &Out, IngestReport &ReportOut);

  /// Details of the resume decision (valid after feedFile).
  const IngestResumeOutcome &resumeOutcome() const;

  /// The thread count \p Requested resolves to (0 = auto: environment,
  /// then hardware concurrency).
  static unsigned resolveThreads(unsigned Requested);

private:
  struct Impl;
  std::unique_ptr<Impl> P;
};

/// Path of the ingest snapshot inside a checkpoint directory.
std::string ingestCheckpointPath(const std::string &Directory);

/// One-shot convenience: ingest \p Text under \p Options.
Status ingestTrace(const std::string &Text, Trace &Out, IngestReport &Report,
                   const IngestOptions &Options = IngestOptions());

/// One-shot convenience: ingest the file at \p Path under \p Options.
Status ingestTraceFile(const std::string &Path, Trace &Out,
                       IngestReport &Report,
                       const IngestOptions &Options = IngestOptions());

} // namespace cafa

#endif // CAFA_TRACE_INGESTSESSION_H
