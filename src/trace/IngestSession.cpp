//===- trace/IngestSession.cpp - Unified trace ingestion API --------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Sharded salvage ingestion.  The session cuts the input byte stream into
// shards at line boundaries (the salvage parser's natural
// resynchronization points), lexes shards concurrently in a small worker
// pool, and merges the lexed fragments strictly in original byte order
// through one SalvageMachine.  Because every stateful decision happens in
// the merge pass, the Trace and IngestReport are bit-identical at every
// thread count; the workers only move the embarrassingly parallel
// tokenize/parse/intern work off the merge thread.
//
// Shard cuts depend only on the input bytes and IngestOptions::ShardBytes
// -- never on scheduling -- which makes the merge checkpoint meaningful:
// a snapshot taken after shard k describes a prefix of the input that any
// later run can verify by re-hashing, then skip.
//
// Ingest snapshot layout (magic "CAFAING1", via support/Snapshot framing):
//   u64 options digest   (semantic salvage options + mode; thread count
//                         and shard size deliberately excluded -- they
//                         cannot change the output)
//   u64 prefix bytes     (input bytes fully merged at snapshot time)
//   u64 prefix FNV-1a    (hash of exactly those bytes)
//   u64 shards merged    (progress accounting for the resume outcome)
//   ...                  SalvageMachine::encodeState payload
//
//===----------------------------------------------------------------------===//

#include "trace/IngestSession.h"

#include "support/Format.h"
#include "support/MappedFile.h"
#include "support/Snapshot.h"
#include "support/WorkerPool.h"
#include "trace/SalvageEngine.h"

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>

using namespace cafa;

namespace {

constexpr const char IngestSnapshotMagic[] = "CAFAING1";
constexpr uint32_t IngestSnapshotVersion = 1;
constexpr uint64_t FnvSeed = 0xcbf29ce484222325ull;

} // namespace

std::string IngestReport::summary() const {
  std::string S = formatString(
      "ingest: %llu lines, %llu records kept, %llu lines dropped, "
      "%llu repaired, %llu synthesized",
      static_cast<unsigned long long>(LinesTotal),
      static_cast<unsigned long long>(RecordsKept),
      static_cast<unsigned long long>(LinesDropped),
      static_cast<unsigned long long>(RecordsRepaired),
      static_cast<unsigned long long>(RecordsSynthesized));
  if (TableEntriesSynthesized)
    S += formatString(", %llu placeholder table entries",
                      static_cast<unsigned long long>(TableEntriesSynthesized));
  if (UnsentEventBegins)
    S += formatString(", %llu unsent event begins",
                      static_cast<unsigned long long>(UnsentEventBegins));
  if (MissingHeader)
    S += ", header missing";
  if (TruncatedFinalLine)
    S += ", final line truncated";
  for (const IngestDiagnostic &D : Diagnostics) {
    if (D.LineNo)
      S += formatString("\n  line %zu: %s", D.LineNo, D.Message.c_str());
    else
      S += formatString("\n  end of input: %s", D.Message.c_str());
  }
  if (IncidentsTotal > Diagnostics.size())
    S += formatString(
        "\n  ... and %llu more incidents",
        static_cast<unsigned long long>(IncidentsTotal - Diagnostics.size()));
  S += '\n';
  return S;
}

std::string cafa::ingestCheckpointPath(const std::string &Directory) {
  return Directory + "/ingest.snapshot";
}

unsigned IngestSession::resolveThreads(unsigned Requested) {
  return resolveWorkerThreads(Requested, "CAFA_INGEST_THREADS");
}

//===----------------------------------------------------------------------===//
// Session implementation
//===----------------------------------------------------------------------===//

struct IngestSession::Impl {
  IngestOptions Opt;
  unsigned Threads;
  uint64_t ShardBytes;
  ingest::SalvageMachine Machine;
  IngestResumeOutcome Resume;

  bool Finished = false;
  bool UsedRawFeed = false;
  bool AnyInput = false;
  char LastByte = '\n';

  // Parse mode hands the whole input to the strict parser at finish();
  // a single mapped file stays a borrowed view (ParseView), any other
  // input shape is accumulated in ParseBuffer.
  std::string ParseBuffer;
  std::string_view ParseView;

  // Bytes fed but not yet cut into a shard.  The mmap path bypasses
  // this entirely for full shards and only copies the sub-shard tail.
  std::string Buffer;

  // Mappings backing zero-copy shard views; they must outlive every
  // in-flight lex job, so they are retired only with the session.
  std::vector<MappedFile> Mappings;

  // Sequential cut-time bookkeeping: hash/offset of everything already
  // cut into shards (== the merged prefix once those shards merge).
  uint64_t DispatchHash = FnvSeed;
  uint64_t DispatchOffset = 0;
  uint64_t NextIndex = 0;

  // Merge bookkeeping (session thread only).
  uint64_t NextMerge = 0;
  uint64_t TotalShardsMerged = 0; ///< incl. shards skipped by resume
  uint64_t MergedThisRun = 0;
  uint64_t BytesSinceSnap = 0;
  bool WroteSnapshot = false;
  bool AbortRequested = false;

  /// One shard travelling through the pool.  Text is the bytes to lex:
  /// a borrowed view into a MappedFile for the zero-copy file path, or
  /// a view of Owned for the streamed feed() path.
  struct Job {
    uint64_t Index = 0;
    uint64_t Bytes = 0;
    uint64_t EndHash = 0;   ///< prefix hash through this shard
    uint64_t EndOffset = 0; ///< prefix bytes through this shard
    std::string_view Text;
    std::string Owned; ///< backing storage when the bytes are not mapped
    ingest::ShardFragment Frag;
    bool Done = false;
  };

  // Shared worker pool (lazy-started; helpers only exist when
  // Threads > 1 -- the 1-thread path lexes inline in dispatchShard).
  // Mu/DoneCv guard the per-job Done flags and the in-flight window;
  // the pool itself only moves lexShard calls onto helper threads.
  std::mutex Mu;
  std::condition_variable DoneCv;
  std::map<uint64_t, std::shared_ptr<Job>> InFlight;
  WorkerPool Pool;

  explicit Impl(const IngestOptions &Options)
      : Opt(Options), Threads(IngestSession::resolveThreads(Options.Threads)),
        ShardBytes(Options.ShardBytes ? Options.ShardBytes : 1),
        Machine(Options.Salvage), Pool(Threads > 1 ? Threads : 0) {}

  bool checkpointEnabled() const { return !Opt.CheckpointDirectory.empty(); }

  /// Digest of every option that can change the *output*.  Thread count
  /// and shard size are excluded: they only change scheduling, so a
  /// resume may legally use different values.
  uint64_t optionsDigest() const {
    uint64_t H = FnvSeed;
    H = fnv1a64Mix(H, Opt.Salvage.Strict ? 1 : 0);
    H = fnv1a64Mix(H, Opt.Salvage.MaxDiagnostics);
    H = fnv1a64Mix(H, Opt.Salvage.MaxDroppedLines);
    uint64_t RatioBits;
    std::memcpy(&RatioBits, &Opt.Salvage.MaxDroppedRatio, sizeof(RatioBits));
    H = fnv1a64Mix(H, RatioBits);
    H = fnv1a64Mix(H, Opt.Salvage.MaxSynthesizedEntries);
    H = fnv1a64Mix(H, Opt.Salvage.MaxEntityId);
    H = fnv1a64Mix(H, Opt.Salvage.RepairTruncation ? 1 : 0);
    H = fnv1a64Mix(H, static_cast<uint64_t>(Opt.Mode));
    return H;
  }

  // --- Merge ------------------------------------------------------------

  /// Applies one lexed shard to the machine, in index order.  Session
  /// thread only.
  void applyJob(const Job &J) {
    if (AbortRequested || Machine.failed())
      return;
    Machine.beginShard(J.Frag.Names);
    const bool FinalShard = J.Frag.EndsWithoutNewline;
    for (const ingest::LexedLine &L : J.Frag.Lines) {
      // The historical reader marked a truncated final line just before
      // processing it -- but only if it had not already hard-failed, so
      // the flag placement is failure-order sensitive.
      if (FinalShard && L.RelLine == J.Frag.LineCount && !Machine.failed())
        Machine.noteTruncatedFinalLine();
      Machine.admit(L);
      if (Machine.failed())
        break;
    }
    if (FinalShard && !Machine.failed())
      Machine.noteTruncatedFinalLine();
    Machine.endShard(J.Frag.LineCount);

    ++TotalShardsMerged;
    ++MergedThisRun;
    BytesSinceSnap += J.Bytes;
    if (!Machine.failed())
      maybeSnapshot(J);
    if (Opt.DebugAbortAfterShards &&
        MergedThisRun >= Opt.DebugAbortAfterShards)
      AbortRequested = true;
  }

  void maybeSnapshot(const Job &J) {
    if (!checkpointEnabled() || BytesSinceSnap < Opt.CheckpointEveryBytes)
      return;
    writeSnapshot(J.EndHash, J.EndOffset);
    BytesSinceSnap = 0;
  }

  void writeSnapshot(uint64_t PrefixHash, uint64_t PrefixBytes) {
    SnapshotWriter W;
    W.u64(optionsDigest());
    W.u64(PrefixBytes);
    W.u64(PrefixHash);
    W.u64(TotalShardsMerged);
    Machine.encodeState(W);
    Status S =
        W.writeFileAtomic(ingestCheckpointPath(Opt.CheckpointDirectory),
                          IngestSnapshotMagic, IngestSnapshotVersion);
    // Checkpointing is best-effort: a write failure must not fail the
    // ingest, it only costs resume coverage.
    if (S.ok())
      WroteSnapshot = true;
  }

  /// Merges every consecutive completed fragment starting at NextMerge.
  /// Called with \p L held; the machine work runs unlocked so workers
  /// are never stalled behind the merge.
  void drainReadyLocked(std::unique_lock<std::mutex> &L) {
    for (;;) {
      std::vector<std::shared_ptr<Job>> Ready;
      auto It = InFlight.find(NextMerge);
      while (It != InFlight.end() && It->second->Done) {
        Ready.push_back(It->second);
        InFlight.erase(It);
        ++NextMerge;
        It = InFlight.find(NextMerge);
      }
      if (Ready.empty())
        return;
      L.unlock();
      for (const std::shared_ptr<Job> &J : Ready)
        applyJob(*J);
      L.lock();
    }
  }

  // --- Sharding ---------------------------------------------------------

  /// Hashes, lexes (inline or on the pool), and merges one shard whose
  /// Text view (and Owned backing, if any) is already set.
  void dispatchShard(std::shared_ptr<Job> J) {
    J->Index = NextIndex++;
    J->Bytes = J->Text.size();
    DispatchHash = fnv1a64(J->Text.data(), J->Text.size(), DispatchHash);
    DispatchOffset += J->Text.size();
    J->EndHash = DispatchHash;
    J->EndOffset = DispatchOffset;

    if (Threads <= 1) {
      ingest::lexShard(J->Text, J->Frag);
      applyJob(*J);
      return;
    }

    {
      std::unique_lock<std::mutex> L(Mu);
      // Backpressure: keep at most ~2 fragments per worker in flight so
      // a fast reader cannot buffer the whole dump in lexed form.
      const size_t MaxInFlight = static_cast<size_t>(Threads) * 2 + 2;
      for (;;) {
        drainReadyLocked(L);
        if (InFlight.size() < MaxInFlight)
          break;
        DoneCv.wait(L);
      }
      InFlight.emplace(J->Index, J);
    }
    Pool.submit([this, J] {
      ingest::lexShard(J->Text, J->Frag);
      J->Text = {};
      std::string().swap(J->Owned); // free any copied bytes eagerly
      std::lock_guard<std::mutex> L(Mu);
      J->Done = true;
      DoneCv.notify_all();
    });
  }

  /// Streamed-path shard: the session owns the bytes.
  void dispatchOwnedShard(std::string Text) {
    auto J = std::make_shared<Job>();
    J->Owned = std::move(Text);
    J->Text = J->Owned;
    dispatchShard(std::move(J));
  }

  /// Zero-copy shard: \p Text borrows from a mapping in Mappings, which
  /// outlives the pool, so no copy is ever made.
  void dispatchMappedShard(std::string_view Text) {
    auto J = std::make_shared<Job>();
    J->Text = Text;
    dispatchShard(std::move(J));
  }

  /// Cuts as many shards as the buffer allows.  A shard ends at the
  /// first newline at or past ShardBytes, so cuts are a function of the
  /// bytes alone; \p Final flushes the unterminated tail.
  void cutShards(bool Final) {
    for (;;) {
      if (Machine.failed() || AbortRequested) {
        Buffer.clear();
        return;
      }
      size_t CutEnd;
      if (Buffer.size() >= ShardBytes) {
        size_t NL = Buffer.find('\n', static_cast<size_t>(ShardBytes - 1));
        if (NL == std::string::npos) {
          if (!Final)
            return; // a longer-than-shard line: wait for its newline
          CutEnd = Buffer.size();
        } else {
          CutEnd = NL + 1;
        }
      } else {
        if (!Final || Buffer.empty())
          return;
        CutEnd = Buffer.size();
      }
      dispatchOwnedShard(Buffer.substr(0, CutEnd));
      Buffer.erase(0, CutEnd);
    }
  }

  /// Zero-copy twin of cutShards over a read-only mapping: cuts the
  /// *same* shard boundaries (first newline at or past ShardBytes --
  /// a pure function of the bytes, so cut points, hashes, and merge
  /// order are bit-identical to the streamed path) directly as views
  /// into \p Data.  Returns the uncut sub-shard tail, which the caller
  /// copies into Buffer so later feed() chunks see an unchanged stream.
  std::string_view cutMappedShards(std::string_view Data) {
    while (!Machine.failed() && !AbortRequested &&
           Data.size() >= ShardBytes) {
      size_t NL = Data.find('\n', static_cast<size_t>(ShardBytes - 1));
      if (NL == std::string_view::npos)
        return Data; // a longer-than-shard line: wait for its newline
      dispatchMappedShard(Data.substr(0, NL + 1));
      Data.remove_prefix(NL + 1);
    }
    if (Machine.failed() || AbortRequested)
      return {}; // hard-failed: drop the remaining stream
    return Data;
  }

  // --- Input ------------------------------------------------------------

  void feedImpl(std::string_view Chunk) {
    if (Finished || Chunk.empty())
      return;
    AnyInput = true;
    LastByte = Chunk.back();
    if (Opt.Mode == IngestMode::Parse) {
      materializeParseView();
      ParseBuffer.append(Chunk);
      return;
    }
    if (Machine.failed() || AbortRequested)
      return; // hard-failed: drop the remaining stream, keep LastByte
    Buffer.append(Chunk);
    cutShards(/*Final=*/false);
  }

  /// Collapses a borrowed Parse-mode view into ParseBuffer so further
  /// chunks can be appended (the single-mapped-file fast path is gone
  /// the moment the input stops being exactly one file).
  void materializeParseView() {
    if (ParseView.empty())
      return;
    ParseBuffer.assign(ParseView);
    ParseView = {};
  }

  /// feedImpl twin for a mapped file: full shards are dispatched as
  /// borrowed views (no copy), only the sub-shard tail lands in Buffer.
  void feedMapped(std::string_view Data) {
    if (Finished || Data.empty())
      return;
    const bool FirstInput = !AnyInput;
    AnyInput = true;
    LastByte = Data.back();
    if (Opt.Mode == IngestMode::Parse) {
      if (FirstInput && ParseBuffer.empty()) {
        ParseView = Data; // whole input = this mapping: parse in place
      } else {
        materializeParseView();
        ParseBuffer.append(Data);
      }
      return;
    }
    if (Machine.failed() || AbortRequested)
      return;
    if (!Buffer.empty()) {
      // Mixed with raw feed(): a shard straddles the copied tail and
      // the mapping, so fall back to the copying path for this file.
      Buffer.append(Data);
      cutShards(/*Final=*/false);
      return;
    }
    Buffer.assign(cutMappedShards(Data));
  }

  void rejectResume(std::string Reason) {
    Resume.RejectReason = std::move(Reason);
  }

  static void rewindStream(std::ifstream &IS) {
    IS.clear();
    IS.seekg(0, std::ios::beg);
  }

  /// Loads the ingest snapshot and checks its header against this
  /// session's options.  Returns false with the outcome recorded when
  /// there is no usable snapshot.
  bool loadSnapshotHeader(SnapshotReader &R, uint64_t &PrefixBytes,
                          uint64_t &PrefixHash, uint64_t &Shards) {
    const std::string Path = ingestCheckpointPath(Opt.CheckpointDirectory);
    {
      std::ifstream Probe(Path, std::ios::binary);
      if (!Probe) {
        Resume.NoSnapshot = true;
        return false;
      }
    }
    Status S = R.loadFile(Path, IngestSnapshotMagic, IngestSnapshotVersion);
    if (!S.ok()) {
      rejectResume(S.message());
      return false;
    }
    uint64_t Digest;
    if (!R.u64(Digest) || !R.u64(PrefixBytes) || !R.u64(PrefixHash) ||
        !R.u64(Shards)) {
      rejectResume("ingest snapshot header malformed");
      return false;
    }
    if (Digest != optionsDigest()) {
      rejectResume("ingest options changed since the snapshot was taken");
      return false;
    }
    return true;
  }

  /// Installs the restored machine state.  Shared tail of the two
  /// resume paths once the prefix hash has been verified.
  bool acceptResume(SnapshotReader &R, uint64_t PrefixBytes,
                    uint64_t PrefixHash, uint64_t Shards, char PrefixLast) {
    ingest::SalvageMachine Restored(Opt.Salvage);
    if (!Restored.decodeState(R) || !R.atEnd()) {
      rejectResume("ingest snapshot payload corrupt");
      return false;
    }
    Machine = std::move(Restored);
    Resume.Resumed = true;
    Resume.BytesSkipped = PrefixBytes;
    Resume.ShardsSkipped = Shards;
    DispatchHash = PrefixHash;
    DispatchOffset = PrefixBytes;
    TotalShardsMerged = Shards;
    if (PrefixBytes > 0) {
      AnyInput = true;
      LastByte = PrefixLast;
    }
    return true;
  }

  /// Mapped-file resume: re-hashes the claimed prefix straight out of
  /// the mapping.  Returns the prefix length to skip (0 when not
  /// resuming).  Rejections fall back to a clean full restart; a
  /// resume can never produce a wrong merge, only save or not save
  /// work.
  uint64_t tryResumeMapped(std::string_view Data) {
    SnapshotReader R;
    uint64_t PrefixBytes, PrefixHash, Shards;
    if (!loadSnapshotHeader(R, PrefixBytes, PrefixHash, Shards))
      return 0;
    if (PrefixBytes > Data.size()) {
      rejectResume("ingest snapshot covers more input than the file holds");
      return 0;
    }
    if (fnv1a64(Data.data(), PrefixBytes, FnvSeed) != PrefixHash) {
      rejectResume("input prefix does not match the ingest snapshot");
      return 0;
    }
    char PrefixLast = PrefixBytes > 0 ? Data[PrefixBytes - 1] : '\n';
    if (!acceptResume(R, PrefixBytes, PrefixHash, Shards, PrefixLast))
      return 0;
    return PrefixBytes;
  }

  /// Buffered-stream resume, leaving \p IS positioned after the covered
  /// prefix on success and rewound to the start on rejection.
  void tryResume(std::ifstream &IS) {
    SnapshotReader R;
    uint64_t PrefixBytes, PrefixHash, Shards;
    if (!loadSnapshotHeader(R, PrefixBytes, PrefixHash, Shards))
      return;

    // Re-hash the file prefix the snapshot claims to cover.
    uint64_t H = FnvSeed;
    uint64_t Left = PrefixBytes;
    char PrefixLast = '\n';
    char Buf[1 << 16];
    while (Left > 0 && IS) {
      size_t Want = Left < sizeof(Buf) ? static_cast<size_t>(Left)
                                       : sizeof(Buf);
      IS.read(Buf, static_cast<std::streamsize>(Want));
      std::streamsize N = IS.gcount();
      if (N <= 0)
        break;
      H = fnv1a64(Buf, static_cast<size_t>(N), H);
      PrefixLast = Buf[N - 1];
      Left -= static_cast<uint64_t>(N);
    }
    if (Left > 0) {
      rewindStream(IS);
      rejectResume("ingest snapshot covers more input than the file holds");
      return;
    }
    if (H != PrefixHash) {
      rewindStream(IS);
      rejectResume("input prefix does not match the ingest snapshot");
      return;
    }

    if (!acceptResume(R, PrefixBytes, PrefixHash, Shards, PrefixLast))
      rewindStream(IS);
  }

  bool resumeWanted() const {
    return Opt.Resume && checkpointEnabled() &&
           Opt.Mode == IngestMode::Salvage;
  }

  /// True when the resume gate passes (a resume needs the file to be
  /// the session's whole input, or the prefix hash is meaningless).
  bool resumeGate() {
    Resume.Attempted = true;
    if (UsedRawFeed || AnyInput) {
      rejectResume("resume requires the file to be the session's only "
                   "input");
      return false;
    }
    return true;
  }

  Status feedFileImpl(const std::string &Path) {
    if (Finished)
      return Status::error("IngestSession::feedFile() after finish()");

    // Budget pre-flight: refuse a regular file that exceeds the input
    // budget up front -- a clean usage error beats an OOM kill halfway
    // through the slurp.  Non-regular inputs (pipes) have no size to
    // check and stream as before.
    if (Opt.MaxInputBytes) {
      int64_t Size = MappedFile::regularFileSize(Path);
      if (Size >= 0 && static_cast<uint64_t>(Size) > Opt.MaxInputBytes)
        return Status::error(formatString(
            "input '%s' is %llu bytes, over the %llu-byte memory budget; "
            "use --window to stream it or raise the memory limit",
            Path.c_str(), static_cast<unsigned long long>(Size),
            static_cast<unsigned long long>(Opt.MaxInputBytes)));
    }

    // Fast path: map the file and lex shards straight out of the page
    // cache -- the byte stream is never copied into a resident string.
    MappedFile MF;
    if (MF.open(Path) == MappedFile::Outcome::Mapped) {
      Mappings.push_back(std::move(MF));
      std::string_view Data = Mappings.back().contents();
      uint64_t Skip = 0;
      if (resumeWanted() && resumeGate())
        Skip = tryResumeMapped(Data);
      feedMapped(Data.substr(Skip));
      return Status::success();
    }

    // Buffered fallback: pipes, devices, empty files, files a mapping
    // attempt rejected.  Missing files surface their error here, with
    // the same message either way.
    std::ifstream IS(Path, std::ios::binary);
    if (!IS)
      return Status::error(
          formatString("cannot open '%s' for reading", Path.c_str()));

    if (resumeWanted() && resumeGate())
      tryResume(IS);

    char Buf[1 << 16];
    while (IS) {
      IS.read(Buf, sizeof(Buf));
      std::streamsize N = IS.gcount();
      if (N > 0)
        feedImpl(std::string_view(Buf, static_cast<size_t>(N)));
    }
    return Status::success();
  }

  // --- Finish -----------------------------------------------------------

  Status finishImpl(Trace &Out, IngestReport &ReportOut) {
    if (Finished)
      return Status::error("IngestSession::finish() called twice");
    Finished = true;

    if (Opt.Mode == IngestMode::Parse) {
      ReportOut = IngestReport();
      Status S = ingest::parseTraceImpl(
          ParseView.empty() ? std::string_view(ParseBuffer) : ParseView,
          Out);
      if (S.ok())
        ReportOut.RecordsKept = Out.numRecords();
      return S;
    }

    cutShards(/*Final=*/true);
    if (Threads > 1) {
      std::unique_lock<std::mutex> L(Mu);
      for (;;) {
        drainReadyLocked(L);
        if (InFlight.empty())
          break;
        DoneCv.wait(L);
      }
    }

    if (AbortRequested)
      return Status::error(formatString(
          "ingest interrupted after %llu shards (DebugAbortAfterShards)",
          static_cast<unsigned long long>(MergedThisRun)));

    // A stream that did not end in a newline has a truncated final line
    // -- unless the machine already hard-failed earlier, in which case
    // the tail was never consumed (matching the streaming reader).
    if (AnyInput && LastByte != '\n' && !Machine.failed())
      Machine.noteTruncatedFinalLine();

    Status S = Machine.finish(Out, ReportOut);

    // Retire our own snapshot on success; foreign/rejected snapshots we
    // neither resumed from nor overwrote are preserved for inspection.
    if (S.ok() && checkpointEnabled() && (WroteSnapshot || Resume.Resumed))
      std::remove(ingestCheckpointPath(Opt.CheckpointDirectory).c_str());
    return S;
  }
};

//===----------------------------------------------------------------------===//
// Public surface
//===----------------------------------------------------------------------===//

IngestSession::IngestSession(const IngestOptions &Options)
    : P(new Impl(Options)) {}

IngestSession::~IngestSession() = default;

void IngestSession::feed(std::string_view Chunk) {
  P->UsedRawFeed = true;
  P->feedImpl(Chunk);
}

Status IngestSession::feedFile(const std::string &Path) {
  return P->feedFileImpl(Path);
}

Status IngestSession::finish(Trace &Out, IngestReport &ReportOut) {
  return P->finishImpl(Out, ReportOut);
}

const IngestResumeOutcome &IngestSession::resumeOutcome() const {
  return P->Resume;
}

Status cafa::ingestTrace(const std::string &Text, Trace &Out,
                         IngestReport &Report, const IngestOptions &Options) {
  IngestSession S(Options);
  S.feed(Text);
  return S.finish(Out, Report);
}

Status cafa::ingestTraceFile(const std::string &Path, Trace &Out,
                             IngestReport &Report,
                             const IngestOptions &Options) {
  IngestSession S(Options);
  Status FS = S.feedFile(Path);
  if (!FS.ok())
    return FS;
  return S.finish(Out, Report);
}
