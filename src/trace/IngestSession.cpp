//===- trace/IngestSession.cpp - Unified trace ingestion API --------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Sharded salvage ingestion.  The session cuts the input byte stream into
// shards at line boundaries (the salvage parser's natural
// resynchronization points), lexes shards concurrently in a small worker
// pool, and merges the lexed fragments strictly in original byte order
// through one SalvageMachine.  Because every stateful decision happens in
// the merge pass, the Trace and IngestReport are bit-identical at every
// thread count; the workers only move the embarrassingly parallel
// tokenize/parse/intern work off the merge thread.
//
// Shard cuts depend only on the input bytes and IngestOptions::ShardBytes
// -- never on scheduling -- which makes the merge checkpoint meaningful:
// a snapshot taken after shard k describes a prefix of the input that any
// later run can verify by re-hashing, then skip.
//
// Ingest snapshot layout (magic "CAFAING1", via support/Snapshot framing):
//   u64 options digest   (semantic salvage options + mode; thread count
//                         and shard size deliberately excluded -- they
//                         cannot change the output)
//   u64 prefix bytes     (input bytes fully merged at snapshot time)
//   u64 prefix FNV-1a    (hash of exactly those bytes)
//   u64 shards merged    (progress accounting for the resume outcome)
//   ...                  SalvageMachine::encodeState payload
//
//===----------------------------------------------------------------------===//

#include "trace/IngestSession.h"

#include "support/Format.h"
#include "support/Snapshot.h"
#include "support/WorkerPool.h"
#include "trace/SalvageEngine.h"

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>

using namespace cafa;

namespace {

constexpr const char IngestSnapshotMagic[] = "CAFAING1";
constexpr uint32_t IngestSnapshotVersion = 1;
constexpr uint64_t FnvSeed = 0xcbf29ce484222325ull;

} // namespace

std::string IngestReport::summary() const {
  std::string S = formatString(
      "ingest: %llu lines, %llu records kept, %llu lines dropped, "
      "%llu repaired, %llu synthesized",
      static_cast<unsigned long long>(LinesTotal),
      static_cast<unsigned long long>(RecordsKept),
      static_cast<unsigned long long>(LinesDropped),
      static_cast<unsigned long long>(RecordsRepaired),
      static_cast<unsigned long long>(RecordsSynthesized));
  if (TableEntriesSynthesized)
    S += formatString(", %llu placeholder table entries",
                      static_cast<unsigned long long>(TableEntriesSynthesized));
  if (UnsentEventBegins)
    S += formatString(", %llu unsent event begins",
                      static_cast<unsigned long long>(UnsentEventBegins));
  if (MissingHeader)
    S += ", header missing";
  if (TruncatedFinalLine)
    S += ", final line truncated";
  for (const IngestDiagnostic &D : Diagnostics) {
    if (D.LineNo)
      S += formatString("\n  line %zu: %s", D.LineNo, D.Message.c_str());
    else
      S += formatString("\n  end of input: %s", D.Message.c_str());
  }
  if (IncidentsTotal > Diagnostics.size())
    S += formatString(
        "\n  ... and %llu more incidents",
        static_cast<unsigned long long>(IncidentsTotal - Diagnostics.size()));
  S += '\n';
  return S;
}

std::string cafa::ingestCheckpointPath(const std::string &Directory) {
  return Directory + "/ingest.snapshot";
}

unsigned IngestSession::resolveThreads(unsigned Requested) {
  return resolveWorkerThreads(Requested, "CAFA_INGEST_THREADS");
}

//===----------------------------------------------------------------------===//
// Session implementation
//===----------------------------------------------------------------------===//

struct IngestSession::Impl {
  IngestOptions Opt;
  unsigned Threads;
  uint64_t ShardBytes;
  ingest::SalvageMachine Machine;
  IngestResumeOutcome Resume;

  bool Finished = false;
  bool UsedRawFeed = false;
  bool AnyInput = false;
  char LastByte = '\n';

  // Parse mode buffers the whole input; the strict parser is not
  // incremental (it has the strong whole-input guarantee instead).
  std::string ParseBuffer;

  // Bytes fed but not yet cut into a shard.
  std::string Buffer;

  // Sequential cut-time bookkeeping: hash/offset of everything already
  // cut into shards (== the merged prefix once those shards merge).
  uint64_t DispatchHash = FnvSeed;
  uint64_t DispatchOffset = 0;
  uint64_t NextIndex = 0;

  // Merge bookkeeping (session thread only).
  uint64_t NextMerge = 0;
  uint64_t TotalShardsMerged = 0; ///< incl. shards skipped by resume
  uint64_t MergedThisRun = 0;
  uint64_t BytesSinceSnap = 0;
  bool WroteSnapshot = false;
  bool AbortRequested = false;

  /// One shard travelling through the pool.
  struct Job {
    uint64_t Index = 0;
    uint64_t Bytes = 0;
    uint64_t EndHash = 0;   ///< prefix hash through this shard
    uint64_t EndOffset = 0; ///< prefix bytes through this shard
    std::string Text;
    ingest::ShardFragment Frag;
    bool Done = false;
  };

  // Shared worker pool (lazy-started; helpers only exist when
  // Threads > 1 -- the 1-thread path lexes inline in dispatchShard).
  // Mu/DoneCv guard the per-job Done flags and the in-flight window;
  // the pool itself only moves lexShard calls onto helper threads.
  std::mutex Mu;
  std::condition_variable DoneCv;
  std::map<uint64_t, std::shared_ptr<Job>> InFlight;
  WorkerPool Pool;

  explicit Impl(const IngestOptions &Options)
      : Opt(Options), Threads(IngestSession::resolveThreads(Options.Threads)),
        ShardBytes(Options.ShardBytes ? Options.ShardBytes : 1),
        Machine(Options.Salvage), Pool(Threads > 1 ? Threads : 0) {}

  bool checkpointEnabled() const { return !Opt.CheckpointDirectory.empty(); }

  /// Digest of every option that can change the *output*.  Thread count
  /// and shard size are excluded: they only change scheduling, so a
  /// resume may legally use different values.
  uint64_t optionsDigest() const {
    uint64_t H = FnvSeed;
    H = fnv1a64Mix(H, Opt.Salvage.Strict ? 1 : 0);
    H = fnv1a64Mix(H, Opt.Salvage.MaxDiagnostics);
    H = fnv1a64Mix(H, Opt.Salvage.MaxDroppedLines);
    uint64_t RatioBits;
    std::memcpy(&RatioBits, &Opt.Salvage.MaxDroppedRatio, sizeof(RatioBits));
    H = fnv1a64Mix(H, RatioBits);
    H = fnv1a64Mix(H, Opt.Salvage.MaxSynthesizedEntries);
    H = fnv1a64Mix(H, Opt.Salvage.MaxEntityId);
    H = fnv1a64Mix(H, Opt.Salvage.RepairTruncation ? 1 : 0);
    H = fnv1a64Mix(H, static_cast<uint64_t>(Opt.Mode));
    return H;
  }

  // --- Merge ------------------------------------------------------------

  /// Applies one lexed shard to the machine, in index order.  Session
  /// thread only.
  void applyJob(const Job &J) {
    if (AbortRequested || Machine.failed())
      return;
    Machine.beginShard(J.Frag.Names);
    const bool FinalShard = J.Frag.EndsWithoutNewline;
    for (const ingest::LexedLine &L : J.Frag.Lines) {
      // The historical reader marked a truncated final line just before
      // processing it -- but only if it had not already hard-failed, so
      // the flag placement is failure-order sensitive.
      if (FinalShard && L.RelLine == J.Frag.LineCount && !Machine.failed())
        Machine.noteTruncatedFinalLine();
      Machine.admit(L);
      if (Machine.failed())
        break;
    }
    if (FinalShard && !Machine.failed())
      Machine.noteTruncatedFinalLine();
    Machine.endShard(J.Frag.LineCount);

    ++TotalShardsMerged;
    ++MergedThisRun;
    BytesSinceSnap += J.Bytes;
    if (!Machine.failed())
      maybeSnapshot(J);
    if (Opt.DebugAbortAfterShards &&
        MergedThisRun >= Opt.DebugAbortAfterShards)
      AbortRequested = true;
  }

  void maybeSnapshot(const Job &J) {
    if (!checkpointEnabled() || BytesSinceSnap < Opt.CheckpointEveryBytes)
      return;
    writeSnapshot(J.EndHash, J.EndOffset);
    BytesSinceSnap = 0;
  }

  void writeSnapshot(uint64_t PrefixHash, uint64_t PrefixBytes) {
    SnapshotWriter W;
    W.u64(optionsDigest());
    W.u64(PrefixBytes);
    W.u64(PrefixHash);
    W.u64(TotalShardsMerged);
    Machine.encodeState(W);
    Status S =
        W.writeFileAtomic(ingestCheckpointPath(Opt.CheckpointDirectory),
                          IngestSnapshotMagic, IngestSnapshotVersion);
    // Checkpointing is best-effort: a write failure must not fail the
    // ingest, it only costs resume coverage.
    if (S.ok())
      WroteSnapshot = true;
  }

  /// Merges every consecutive completed fragment starting at NextMerge.
  /// Called with \p L held; the machine work runs unlocked so workers
  /// are never stalled behind the merge.
  void drainReadyLocked(std::unique_lock<std::mutex> &L) {
    for (;;) {
      std::vector<std::shared_ptr<Job>> Ready;
      auto It = InFlight.find(NextMerge);
      while (It != InFlight.end() && It->second->Done) {
        Ready.push_back(It->second);
        InFlight.erase(It);
        ++NextMerge;
        It = InFlight.find(NextMerge);
      }
      if (Ready.empty())
        return;
      L.unlock();
      for (const std::shared_ptr<Job> &J : Ready)
        applyJob(*J);
      L.lock();
    }
  }

  // --- Sharding ---------------------------------------------------------

  void dispatchShard(std::string Text) {
    auto J = std::make_shared<Job>();
    J->Index = NextIndex++;
    J->Bytes = Text.size();
    DispatchHash = fnv1a64(Text.data(), Text.size(), DispatchHash);
    DispatchOffset += Text.size();
    J->EndHash = DispatchHash;
    J->EndOffset = DispatchOffset;

    if (Threads <= 1) {
      ingest::lexShard(Text, J->Frag);
      applyJob(*J);
      return;
    }

    J->Text = std::move(Text);
    {
      std::unique_lock<std::mutex> L(Mu);
      // Backpressure: keep at most ~2 fragments per worker in flight so
      // a fast reader cannot buffer the whole dump in lexed form.
      const size_t MaxInFlight = static_cast<size_t>(Threads) * 2 + 2;
      for (;;) {
        drainReadyLocked(L);
        if (InFlight.size() < MaxInFlight)
          break;
        DoneCv.wait(L);
      }
      InFlight.emplace(J->Index, J);
    }
    Pool.submit([this, J] {
      ingest::lexShard(J->Text, J->Frag);
      std::string().swap(J->Text); // free the raw bytes eagerly
      std::lock_guard<std::mutex> L(Mu);
      J->Done = true;
      DoneCv.notify_all();
    });
  }

  /// Cuts as many shards as the buffer allows.  A shard ends at the
  /// first newline at or past ShardBytes, so cuts are a function of the
  /// bytes alone; \p Final flushes the unterminated tail.
  void cutShards(bool Final) {
    for (;;) {
      if (Machine.failed() || AbortRequested) {
        Buffer.clear();
        return;
      }
      size_t CutEnd;
      if (Buffer.size() >= ShardBytes) {
        size_t NL = Buffer.find('\n', static_cast<size_t>(ShardBytes - 1));
        if (NL == std::string::npos) {
          if (!Final)
            return; // a longer-than-shard line: wait for its newline
          CutEnd = Buffer.size();
        } else {
          CutEnd = NL + 1;
        }
      } else {
        if (!Final || Buffer.empty())
          return;
        CutEnd = Buffer.size();
      }
      dispatchShard(Buffer.substr(0, CutEnd));
      Buffer.erase(0, CutEnd);
    }
  }

  // --- Input ------------------------------------------------------------

  void feedImpl(std::string_view Chunk) {
    if (Finished || Chunk.empty())
      return;
    AnyInput = true;
    LastByte = Chunk.back();
    if (Opt.Mode == IngestMode::Parse) {
      ParseBuffer.append(Chunk);
      return;
    }
    if (Machine.failed() || AbortRequested)
      return; // hard-failed: drop the remaining stream, keep LastByte
    Buffer.append(Chunk);
    cutShards(/*Final=*/false);
  }

  void rejectResume(std::string Reason) {
    Resume.RejectReason = std::move(Reason);
  }

  static void rewindStream(std::ifstream &IS) {
    IS.clear();
    IS.seekg(0, std::ios::beg);
  }

  /// Attempts to restore merge state from an ingest snapshot, leaving
  /// \p IS positioned after the covered prefix on success and rewound to
  /// the start on rejection.  Rejections always fall back to a clean
  /// full restart; a resume can therefore never produce a wrong merge,
  /// only save or not save work.
  void tryResume(std::ifstream &IS) {
    const std::string Path = ingestCheckpointPath(Opt.CheckpointDirectory);
    {
      std::ifstream Probe(Path, std::ios::binary);
      if (!Probe) {
        Resume.NoSnapshot = true;
        return;
      }
    }
    SnapshotReader R;
    Status S = R.loadFile(Path, IngestSnapshotMagic, IngestSnapshotVersion);
    if (!S.ok()) {
      rejectResume(S.message());
      return;
    }
    uint64_t Digest, PrefixBytes, PrefixHash, Shards;
    if (!R.u64(Digest) || !R.u64(PrefixBytes) || !R.u64(PrefixHash) ||
        !R.u64(Shards)) {
      rejectResume("ingest snapshot header malformed");
      return;
    }
    if (Digest != optionsDigest()) {
      rejectResume("ingest options changed since the snapshot was taken");
      return;
    }

    // Re-hash the file prefix the snapshot claims to cover.
    uint64_t H = FnvSeed;
    uint64_t Left = PrefixBytes;
    char PrefixLast = '\n';
    char Buf[1 << 16];
    while (Left > 0 && IS) {
      size_t Want = Left < sizeof(Buf) ? static_cast<size_t>(Left)
                                       : sizeof(Buf);
      IS.read(Buf, static_cast<std::streamsize>(Want));
      std::streamsize N = IS.gcount();
      if (N <= 0)
        break;
      H = fnv1a64(Buf, static_cast<size_t>(N), H);
      PrefixLast = Buf[N - 1];
      Left -= static_cast<uint64_t>(N);
    }
    if (Left > 0) {
      rewindStream(IS);
      rejectResume("ingest snapshot covers more input than the file holds");
      return;
    }
    if (H != PrefixHash) {
      rewindStream(IS);
      rejectResume("input prefix does not match the ingest snapshot");
      return;
    }

    ingest::SalvageMachine Restored(Opt.Salvage);
    if (!Restored.decodeState(R) || !R.atEnd()) {
      rewindStream(IS);
      rejectResume("ingest snapshot payload corrupt");
      return;
    }

    Machine = std::move(Restored);
    Resume.Resumed = true;
    Resume.BytesSkipped = PrefixBytes;
    Resume.ShardsSkipped = Shards;
    DispatchHash = PrefixHash;
    DispatchOffset = PrefixBytes;
    TotalShardsMerged = Shards;
    if (PrefixBytes > 0) {
      AnyInput = true;
      LastByte = PrefixLast;
    }
  }

  Status feedFileImpl(const std::string &Path) {
    if (Finished)
      return Status::error("IngestSession::feedFile() after finish()");
    std::ifstream IS(Path, std::ios::binary);
    if (!IS)
      return Status::error(
          formatString("cannot open '%s' for reading", Path.c_str()));

    if (Opt.Resume && checkpointEnabled() &&
        Opt.Mode == IngestMode::Salvage) {
      Resume.Attempted = true;
      if (UsedRawFeed || AnyInput)
        rejectResume("resume requires the file to be the session's only "
                     "input");
      else
        tryResume(IS);
    }

    char Buf[1 << 16];
    while (IS) {
      IS.read(Buf, sizeof(Buf));
      std::streamsize N = IS.gcount();
      if (N > 0)
        feedImpl(std::string_view(Buf, static_cast<size_t>(N)));
    }
    return Status::success();
  }

  // --- Finish -----------------------------------------------------------

  Status finishImpl(Trace &Out, IngestReport &ReportOut) {
    if (Finished)
      return Status::error("IngestSession::finish() called twice");
    Finished = true;

    if (Opt.Mode == IngestMode::Parse) {
      ReportOut = IngestReport();
      Status S = ingest::parseTraceImpl(ParseBuffer, Out);
      if (S.ok())
        ReportOut.RecordsKept = Out.numRecords();
      return S;
    }

    cutShards(/*Final=*/true);
    if (Threads > 1) {
      std::unique_lock<std::mutex> L(Mu);
      for (;;) {
        drainReadyLocked(L);
        if (InFlight.empty())
          break;
        DoneCv.wait(L);
      }
    }

    if (AbortRequested)
      return Status::error(formatString(
          "ingest interrupted after %llu shards (DebugAbortAfterShards)",
          static_cast<unsigned long long>(MergedThisRun)));

    // A stream that did not end in a newline has a truncated final line
    // -- unless the machine already hard-failed earlier, in which case
    // the tail was never consumed (matching the streaming reader).
    if (AnyInput && LastByte != '\n' && !Machine.failed())
      Machine.noteTruncatedFinalLine();

    Status S = Machine.finish(Out, ReportOut);

    // Retire our own snapshot on success; foreign/rejected snapshots we
    // neither resumed from nor overwrote are preserved for inspection.
    if (S.ok() && checkpointEnabled() && (WroteSnapshot || Resume.Resumed))
      std::remove(ingestCheckpointPath(Opt.CheckpointDirectory).c_str());
    return S;
  }
};

//===----------------------------------------------------------------------===//
// Public surface
//===----------------------------------------------------------------------===//

IngestSession::IngestSession(const IngestOptions &Options)
    : P(new Impl(Options)) {}

IngestSession::~IngestSession() = default;

void IngestSession::feed(std::string_view Chunk) {
  P->UsedRawFeed = true;
  P->feedImpl(Chunk);
}

Status IngestSession::feedFile(const std::string &Path) {
  return P->feedFileImpl(Path);
}

Status IngestSession::finish(Trace &Out, IngestReport &ReportOut) {
  return P->finishImpl(Out, ReportOut);
}

const IngestResumeOutcome &IngestSession::resumeOutcome() const {
  return P->Resume;
}

Status cafa::ingestTrace(const std::string &Text, Trace &Out,
                         IngestReport &Report, const IngestOptions &Options) {
  IngestSession S(Options);
  S.feed(Text);
  return S.finish(Out, Report);
}

Status cafa::ingestTraceFile(const std::string &Path, Trace &Out,
                             IngestReport &Report,
                             const IngestOptions &Options) {
  IngestSession S(Options);
  Status FS = S.feedFile(Path);
  if (!FS.ok())
    return FS;
  return S.finish(Out, Report);
}
