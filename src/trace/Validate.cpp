//===- trace/Validate.cpp - Trace well-formedness checking ----------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "trace/Validate.h"

#include "support/Format.h"

#include <unordered_set>
#include <vector>

using namespace cafa;

namespace {

/// Per-task running state used during the single validation pass.
struct TaskState {
  bool Begun = false;
  bool Ended = false;
  std::vector<uint64_t> LockStack;
  std::vector<uint64_t> FrameStack;
};

Status recError(uint32_t Index, const TraceRecord &Rec, const Trace &T,
                const char *What) {
  return Status::error(formatString(
      "record %u (%s in task '%s'): %s", Index, opKindName(Rec.Kind),
      T.taskName(Rec.Task).c_str(), What));
}

} // namespace

Status cafa::validateTrace(const Trace &T) {
  return validateTrace(T, ValidateOptions());
}

Status cafa::validateTrace(const Trace &T, const ValidateOptions &Options) {
  std::vector<TaskState> States(T.numTasks());
  // For each event task: index of the send record naming it, if any.
  std::vector<bool> EventSent(T.numTasks(), false);
  // Currently active event per queue (looper atomicity check).
  std::vector<TaskId> ActiveEvent(T.numQueues(), TaskId::invalid());
  std::unordered_set<uint64_t> SeenFrameIds;
  uint64_t LastTime = 0;

  for (uint32_t I = 0, E = static_cast<uint32_t>(T.numRecords()); I != E;
       ++I) {
    const TraceRecord &Rec = T.record(I);
    if (Rec.Task.index() >= T.numTasks())
      return Status::error(
          formatString("record %u references unknown task", I));
    const TaskInfo &Info = T.taskInfo(Rec.Task);
    TaskState &State = States[Rec.Task.index()];

    if (Rec.Time < LastTime)
      return recError(I, Rec, T, "timestamps must be nondecreasing");
    LastTime = Rec.Time;

    if (Rec.Kind == OpKind::TaskBegin) {
      if (State.Begun)
        return recError(I, Rec, T, "duplicate begin");
      State.Begun = true;
      if (Info.Kind == TaskKind::Event) {
        if (!Info.External && !EventSent[Rec.Task.index()] &&
            !Options.AllowUnsentEvents)
          return recError(I, Rec, T,
                          "non-external event begins before being sent");
        if (!Info.Queue.isValid() || Info.Queue.index() >= T.numQueues())
          return recError(I, Rec, T, "event has no valid queue");
        TaskId &Active = ActiveEvent[Info.Queue.index()];
        if (Active.isValid())
          return recError(I, Rec, T,
                          "events on one queue must not interleave");
        Active = Rec.Task;
      }
      continue;
    }

    if (!State.Begun)
      return recError(I, Rec, T, "operation before task begin");
    if (State.Ended)
      return recError(I, Rec, T, "operation after task end");

    switch (Rec.Kind) {
    case OpKind::TaskEnd: {
      State.Ended = true;
      if (!State.LockStack.empty())
        return recError(I, Rec, T, "task ends holding a lock");
      if (!State.FrameStack.empty())
        return recError(I, Rec, T, "task ends inside a method frame");
      if (Info.Kind == TaskKind::Event) {
        TaskId &Active = ActiveEvent[Info.Queue.index()];
        if (Active != Rec.Task)
          return recError(I, Rec, T, "event end does not match active event");
        Active = TaskId::invalid();
      }
      break;
    }
    case OpKind::Send:
    case OpKind::SendAtFront: {
      TaskId Target = Rec.targetTask();
      if (Target.index() >= T.numTasks())
        return recError(I, Rec, T, "send references unknown event");
      const TaskInfo &TargetInfo = T.taskInfo(Target);
      if (TargetInfo.Kind != TaskKind::Event)
        return recError(I, Rec, T, "send target is not an event");
      if (EventSent[Target.index()])
        return recError(I, Rec, T, "event sent twice");
      if (States[Target.index()].Begun)
        return recError(I, Rec, T, "event sent after it began");
      if (TargetInfo.Queue != Rec.queue())
        return recError(I, Rec, T, "send queue disagrees with task table");
      EventSent[Target.index()] = true;
      break;
    }
    case OpKind::Fork: {
      TaskId Target = Rec.targetTask();
      if (Target.index() >= T.numTasks() ||
          T.taskInfo(Target).Kind != TaskKind::Thread)
        return recError(I, Rec, T, "fork target is not a thread");
      break;
    }
    case OpKind::Join: {
      TaskId Target = Rec.targetTask();
      if (Target.index() >= T.numTasks() ||
          T.taskInfo(Target).Kind != TaskKind::Thread)
        return recError(I, Rec, T, "join target is not a thread");
      if (!States[Target.index()].Ended)
        return recError(I, Rec, T, "join of a thread that has not ended");
      break;
    }
    case OpKind::LockAcquire:
      State.LockStack.push_back(Rec.Arg0);
      break;
    case OpKind::LockRelease:
      if (State.LockStack.empty() || State.LockStack.back() != Rec.Arg0)
        return recError(I, Rec, T, "unbalanced lock release");
      State.LockStack.pop_back();
      break;
    case OpKind::MethodEnter:
      if (!SeenFrameIds.insert(Rec.frameId()).second)
        return recError(I, Rec, T, "frame id reused");
      State.FrameStack.push_back(Rec.frameId());
      break;
    case OpKind::MethodExit:
      if (State.FrameStack.empty() ||
          State.FrameStack.back() != Rec.frameId())
        return recError(I, Rec, T, "unbalanced method exit");
      State.FrameStack.pop_back();
      break;
    case OpKind::RegisterListener:
    case OpKind::PerformListener:
      if (Rec.listener().index() >= T.numListeners())
        return recError(I, Rec, T, "unknown listener");
      break;
    default:
      break;
    }
  }

  for (uint32_t I = 0, E = static_cast<uint32_t>(T.numTasks()); I != E;
       ++I) {
    // Tasks may legitimately still be live at trace cutoff (the paper
    // stops tracing after 10-30 seconds of interaction), so an unended
    // task is fine; an un-begun task with records was already rejected.
    (void)I;
  }
  return Status::success();
}
