//===- rt/Runtime.h - Event-driven runtime simulator -----------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic discrete-event simulator standing in for the Android
/// stack.  It interprets mini-Dalvik code under the event-driven model of
/// Section 2.1: per-queue looper threads draining events in queued order
/// once their time constraints elapse (with sendAtFront jumping the
/// queue), regular threads with fork/join, monitors with wait/notify,
/// non-HB locks, listener registration/dispatch, and Binder RPC across
/// processes.  When tracing is enabled it plays the role of the paper's
/// customized ROM: every operation of Figure 3 plus the Section 5.3
/// low-level operations is appended to a logger device.
///
/// Determinism: scheduling depends only on the scenario and the options'
/// seed, never on tracing, so an instrumented and an uninstrumented run
/// execute the identical interleaving (this is what makes the Figure 8
/// slowdown comparison meaningful).
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_RT_RUNTIME_H
#define CAFA_RT_RUNTIME_H

#include "ir/Module.h"
#include "rt/ObjectHeap.h"
#include "rt/Scenario.h"
#include "rt/Value.h"
#include "support/Status.h"
#include "trace/LoggerDevice.h"

#include <deque>
#include <queue>
#include <vector>

namespace cafa {

/// Names one dynamic task by (entry method, creation ordinal): the
/// Ordinal'th task created with entry \p Entry, counting from 0 in
/// creation order.  Trace task ids equal creation order and the trace's
/// task table records each task's entry handler, so a pick computed
/// from a trace selects the same dynamic task when the same scenario is
/// re-run -- this is how the confirmation subsystem names "the event
/// that freed" without a task-id channel between runs.
struct TaskPick {
  MethodId Entry;
  uint32_t Ordinal = 0;
};

/// One schedule-override constraint: do not start (dispatch) task
/// \p Held until task \p After has run to completion.  Held events stay
/// in their queue while later entries run -- exactly the reordering a
/// real looper exhibits when an earlier message carries a longer delay.
struct ScheduleConstraint {
  TaskPick Held;
  TaskPick After;
};

/// A set of hold-until constraints applied to one run.  Scheduling
/// still depends only on the scenario and the options (this struct is
/// part of the options), so the determinism contract holds: two runs
/// with the same scenario and the same override execute the identical
/// interleaving, traced or not.  Constraints that can never release
/// (the after-task never ends) expire at quiescence instead of
/// deadlocking the run -- see RuntimeStats::ScheduleHoldsExpired.
struct ScheduleOverride {
  std::vector<ScheduleConstraint> Constraints;

  bool empty() const { return Constraints.empty(); }
};

/// Knobs controlling one simulated run.
struct RuntimeOptions {
  /// Collect a trace (the "customized ROM"); false = stock ROM baseline.
  bool Tracing = true;
  /// Also serialize each record to the logger byte stream (realistic
  /// per-record cost; only meaningful when Tracing).
  bool MirrorStream = true;
  /// Simulated cost of one bytecode instruction, in microseconds.
  uint32_t InstrCostMicros = 2;
  /// Host-CPU busy-work iterations per interpreted instruction.  This
  /// calibrates the interpreter-to-tracing cost ratio that Figure 8's
  /// slowdown band depends on.
  uint32_t BaselineWorkUnits = 6;
  /// Hard cap on interpreted instructions (runaway guard).
  uint64_t MaxInstructions = 50'000'000;
  /// Simulated fork-to-first-instruction latency in microseconds.
  uint32_t ForkLatencyMicros = 100;
  /// Simulated Binder dispatch latency in microseconds.
  uint32_t RpcLatencyMicros = 300;
  /// Hold-until constraints reordering task dispatch (empty = the
  /// default schedule).  Part of the options, so the determinism
  /// contract extends to overridden runs.
  ScheduleOverride Schedule;
};

/// Counters reported after a run.
struct RuntimeStats {
  uint64_t InstructionsExecuted = 0;
  uint64_t RecordsEmitted = 0;
  uint64_t NullPointerExceptions = 0;
  uint64_t TasksCreated = 0;
  uint64_t EventsProcessed = 0;
  /// Tasks still blocked when the simulation quiesced (usually a scenario
  /// bug: a wait with no notify or a join of a stuck thread).
  uint64_t BlockedAtQuiescence = 0;
  /// Final simulated time in microseconds.
  uint64_t SimEndMicros = 0;
  /// Host CPU nanoseconds consumed inside run().
  uint64_t HostCpuNanos = 0;
  /// Schedule-override constraints still unreleased when the run
  /// otherwise quiesced; their holds were expired so the remaining work
  /// could drain (the after-task never completed -- a pick that matched
  /// nothing, or a hold cycle).
  uint64_t ScheduleHoldsExpired = 0;
  /// The faulting instruction of each NPE thrown, in throw order: the
  /// (method, pc) of the frame that dereferenced null.  This is the
  /// instruction whose Deref record the access extractor matches, so a
  /// confirmation replay can test "did the predicted use crash" by
  /// exact site rather than by counting exceptions.
  struct NpeSite {
    MethodId Method;
    uint32_t Pc = 0;
  };
  std::vector<NpeSite> NpeSites;
};

/// The simulator.  Typical use:
/// \code
///   Runtime Rt(Scenario, Options);
///   Status S = Rt.run();
///   Trace T = Rt.takeTrace();
/// \endcode
class Runtime {
public:
  Runtime(const Scenario &S, const RuntimeOptions &Options);
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  /// Runs the simulation to quiescence.  Fails on verifier errors or the
  /// instruction cap; NPEs abort the offending task but not the run.
  Status run();

  /// Returns the collected statistics (valid after run()).
  const RuntimeStats &stats() const;

  /// Moves the collected trace out (valid after run(); Tracing only).
  Trace takeTrace();

  /// Bytes written to the logger mirror stream (instrumented cost proxy).
  size_t loggerStreamBytes() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// Convenience wrapper: runs \p S with \p Options and returns the trace.
/// Aborts the process on scenario errors (app models are trusted code).
Trace runScenario(const Scenario &S, const RuntimeOptions &Options,
                  RuntimeStats *StatsOut = nullptr);

} // namespace cafa

#endif // CAFA_RT_RUNTIME_H
