//===- rt/Runtime.cpp - Event-driven runtime simulator ---------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "rt/Runtime.h"

#include "ir/Verifier.h"
#include "support/Format.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>

using namespace cafa;

namespace {

/// Host busy-work sink shared by all runtimes; volatile so the loop in
/// spinWork() cannot be optimized away.
volatile uint64_t SpinSink = 0x9E3779B97F4A7C15ull;

/// Burns \p Units iterations of xorshift work on the host CPU.  This
/// models the interpreter + application cost an uninstrumented run pays,
/// giving the instrumented/uninstrumented CPU ratio (Figure 8) a
/// realistic denominator.
void spinWork(uint32_t Units) {
  uint64_t X = SpinSink;
  for (uint32_t I = 0; I != Units; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
  }
  SpinSink = X;
}

/// One interpreter frame.
struct Frame {
  MethodId Method;
  uint32_t Pc = 0;
  uint64_t FrameId = 0;
  std::vector<Value> Regs;
};

enum class TaskState : uint8_t { Created, Runnable, Blocked, Done };
enum class BlockKind : uint8_t { None, Lock, Monitor, Join, Pipe };

/// Runtime state of one task (thread or event).
struct RtTask {
  TaskId Id;
  TaskKind Kind = TaskKind::Thread;
  ProcessId Process;
  QueueId Queue;   // events only
  MethodId Entry;
  bool HasArg = false;
  Value Arg;
  ListenerId FromListener;
  TransactionId PendingIpcRecv;
  bool External = false;
  bool IsLooper = false;
  bool Started = false;

  std::vector<Frame> Frames;
  TaskState State = TaskState::Created;
  BlockKind Block = BlockKind::None;
  uint32_t BlockRef = 0;
  bool Notified = false;
  std::vector<uint32_t> HeldLocks;
  uint64_t Time = 0;
  bool StepQueued = false;
};

/// One pending event in a queue.
struct QueueEntry {
  uint32_t TaskIndex;
  uint64_t ReadyTime;
};

/// Runtime state of one event queue.
struct RtQueue {
  std::deque<QueueEntry> Entries;
  uint32_t LooperTaskIndex = 0;
  bool Busy = false;
  uint64_t ScheduledPollTime = UINT64_MAX;
};

struct MonitorState {
  uint32_t PendingNotifies = 0;
  std::deque<uint32_t> Waiters;
};

struct LockState {
  int64_t HolderTask = -1;
};

/// One pipe channel: pending messages tagged with transaction ids.
struct PipeState {
  std::deque<std::pair<uint32_t, Value>> Messages;
};

struct ListenerRegistration {
  bool Registered = false;
  MethodId Handler;
  bool HasArg = false;
  Value Arg;
};

/// Scheduler work item kinds.
enum class ItemKind : uint8_t { Step, StartThread, Inject, Poll };

struct SchedItem {
  uint64_t Time;
  uint64_t Seq;
  ItemKind Kind;
  uint32_t Index;
  bool operator>(const SchedItem &O) const {
    if (Time != O.Time)
      return Time > O.Time;
    return Seq > O.Seq;
  }
};

} // namespace

/// One ScheduleConstraint being tracked during a run: the picks plus
/// the task indices they resolved to (at task creation) and whether the
/// hold has been released.
struct TrackedConstraint {
  TaskPick Held;
  TaskPick After;
  int64_t HeldTask = -1;  ///< resolved task index, -1 until created
  int64_t AfterTask = -1; ///< resolved task index, -1 until created
  bool Released = false;
};

struct Runtime::Impl {
  const Scenario &S;
  const Module &M;
  RuntimeOptions Opt;
  ObjectHeap Heap;
  LoggerDevice Logger;
  RuntimeStats Stats;

  std::vector<RtTask> Tasks;
  std::vector<RtQueue> Queues;
  std::vector<MonitorState> Monitors;
  std::vector<LockState> Locks;
  std::vector<PipeState> Pipes;
  std::vector<ListenerRegistration> Listeners;
  std::priority_queue<SchedItem, std::vector<SchedItem>,
                      std::greater<SchedItem>>
      Heap_;
  uint64_t SeqCounter = 0;
  uint64_t FrameIdCounter = 0;
  uint32_t TxnCounter = 0;
  Status Failure;
  bool TraceTaken = false;

  /// Schedule-override state.  Constraints resolve their picks to task
  /// indices as tasks are created; held thread starts park here until
  /// their after-task completes.
  std::vector<TrackedConstraint> Constraints;
  /// Next creation ordinal per entry-method id (only maintained when
  /// constraints exist -- the counters are pure bookkeeping).
  std::vector<uint32_t> EntryOrdinals;
  std::vector<uint32_t> ParkedThreads;

  Impl(const Scenario &S, const RuntimeOptions &Opt)
      : S(S), M(S.module()), Opt(Opt), Heap(M),
        Logger(Opt.Tracing && Opt.MirrorStream) {
    Constraints.reserve(Opt.Schedule.Constraints.size());
    for (const ScheduleConstraint &C : Opt.Schedule.Constraints) {
      TrackedConstraint TC;
      TC.Held = C.Held;
      TC.After = C.After;
      Constraints.push_back(TC);
    }
  }

  // --- Scheduling primitives --------------------------------------------

  void push(uint64_t Time, ItemKind Kind, uint32_t Index) {
    Heap_.push({Time, SeqCounter++, Kind, Index});
  }

  void pushStep(uint32_t TaskIdx) {
    RtTask &T = Tasks[TaskIdx];
    if (T.StepQueued)
      return;
    T.StepQueued = true;
    push(T.Time, ItemKind::Step, TaskIdx);
  }

  void schedulePoll(uint32_t QueueIdx, uint64_t At) {
    RtQueue &Q = Queues[QueueIdx];
    if (Q.ScheduledPollTime <= At)
      return;
    Q.ScheduledPollTime = At;
    push(At, ItemKind::Poll, QueueIdx);
  }

  // --- Schedule overrides -----------------------------------------------

  bool isHeld(uint32_t TaskIdx) const {
    for (const TrackedConstraint &C : Constraints)
      if (!C.Released && C.HeldTask == static_cast<int64_t>(TaskIdx))
        return true;
    return false;
  }

  /// Resolves constraint picks against the task being created at
  /// \p Index with entry \p Entry.
  void resolvePicks(uint32_t Index, MethodId Entry) {
    if (Constraints.empty() || !Entry.isValid())
      return;
    if (EntryOrdinals.size() <= Entry.index())
      EntryOrdinals.resize(Entry.index() + 1, 0);
    uint32_t Ord = EntryOrdinals[Entry.index()]++;
    for (TrackedConstraint &C : Constraints) {
      if (C.Held.Entry == Entry && C.Held.Ordinal == Ord)
        C.HeldTask = Index;
      if (C.After.Entry == Entry && C.After.Ordinal == Ord)
        C.AfterTask = Index;
    }
  }

  /// Re-dispatches work a hold release (or expiry) may have unblocked:
  /// parked thread starts whose holds cleared, and idle queues whose
  /// head may have been a skipped held entry.
  void reviveAfterRelease(uint64_t Now) {
    for (size_t I = 0; I != ParkedThreads.size();) {
      uint32_t Idx = ParkedThreads[I];
      if (isHeld(Idx)) {
        ++I;
        continue;
      }
      RtTask &T = Tasks[Idx];
      T.Time = std::max(T.Time, Now);
      push(T.Time, ItemKind::StartThread, Idx);
      ParkedThreads.erase(ParkedThreads.begin() +
                          static_cast<ptrdiff_t>(I));
    }
    for (uint32_t Q = 0, E = static_cast<uint32_t>(Queues.size()); Q != E;
         ++Q)
      if (!Queues[Q].Busy && !Queues[Q].Entries.empty())
        schedulePoll(Q, Now);
  }

  /// Releases every constraint waiting on \p DoneTaskIdx.
  void releaseConstraintsFor(uint32_t DoneTaskIdx, uint64_t Now) {
    bool AnyReleased = false;
    for (TrackedConstraint &C : Constraints)
      if (!C.Released && C.AfterTask == static_cast<int64_t>(DoneTaskIdx)) {
        C.Released = true;
        AnyReleased = true;
      }
    if (AnyReleased)
      reviveAfterRelease(Now);
  }

  /// Called when the run quiesced with constraints still unreleased:
  /// their after-tasks can no longer complete (unmatched pick or hold
  /// cycle), so the holds expire and the parked work drains under the
  /// default order.  Returns true if anything was revived.
  bool expireHolds(uint64_t Now) {
    bool AnyExpired = false;
    for (TrackedConstraint &C : Constraints)
      if (!C.Released) {
        C.Released = true;
        ++Stats.ScheduleHoldsExpired;
        AnyExpired = true;
      }
    if (!AnyExpired)
      return false;
    reviveAfterRelease(Now);
    return !Heap_.empty();
  }

  // --- Trace emission -----------------------------------------------------

  void emit(const RtTask &T, OpKind Kind, uint64_t A0 = 0, uint64_t A1 = 0,
            uint64_t A2 = 0) {
    if (!Opt.Tracing)
      return;
    TraceRecord Rec;
    Rec.Task = T.Id;
    Rec.Kind = Kind;
    if (!T.Frames.empty()) {
      Rec.Method = T.Frames.back().Method;
      Rec.Pc = T.Frames.back().Pc;
    }
    Rec.Arg0 = A0;
    Rec.Arg1 = A1;
    Rec.Arg2 = A2;
    Rec.Time = T.Time;
    Logger.append(Rec);
    ++Stats.RecordsEmitted;
  }

  // --- Task creation --------------------------------------------------------

  uint32_t createTask(TaskKind Kind, std::string_view Name,
                      ProcessId Process, QueueId Queue, MethodId Entry,
                      bool HasArg, Value Arg, bool External, bool IsLooper,
                      uint64_t DelayMs, bool AtFront, TaskId Parent,
                      ListenerId FromListener) {
    uint32_t Index = static_cast<uint32_t>(Tasks.size());
    Tasks.emplace_back();
    RtTask &T = Tasks.back();
    T.Id = TaskId(Index);
    T.Kind = Kind;
    T.Process = Process;
    T.Queue = Queue;
    T.Entry = Entry;
    T.HasArg = HasArg;
    T.Arg = Arg;
    T.External = External;
    T.IsLooper = IsLooper;
    T.FromListener = FromListener;
    ++Stats.TasksCreated;
    resolvePicks(Index, Entry);

    if (Opt.Tracing) {
      TaskInfo Info;
      Info.Kind = Kind;
      Info.Name = Logger.trace().names().intern(Name);
      Info.Process = Process;
      Info.Queue = Queue;
      Info.Handler = Entry;
      Info.DelayMs = DelayMs;
      Info.SentAtFront = AtFront;
      Info.External = External;
      Info.Parent = Parent;
      Info.IsLooper = IsLooper;
      TaskId Got = Logger.trace().addTask(Info);
      assert(Got == T.Id && "trace task table out of sync");
      (void)Got;
    }
    return Index;
  }

  /// Pushes the entry frame of \p T (v0 = optional argument).
  void pushEntryFrame(RtTask &T) {
    const MethodDef &Def = M.methodDef(T.Entry);
    Frame F;
    F.Method = T.Entry;
    F.FrameId = ++FrameIdCounter;
    F.Regs.assign(Def.NumRegs, Value());
    if (T.HasArg && Def.NumRegs > 0)
      F.Regs[0] = T.Arg;
    T.Frames.push_back(std::move(F));
    emit(T, OpKind::MethodEnter, T.Frames.back().FrameId);
  }

  /// Starts a thread task at time \p Now (begin + IPC receive + frame).
  void startThread(uint32_t TaskIdx, uint64_t Now) {
    RtTask &T = Tasks[TaskIdx];
    assert(!T.Started && "thread started twice");
    T.Started = true;
    T.Time = std::max(T.Time, Now);
    T.State = TaskState::Runnable;
    emit(T, OpKind::TaskBegin);
    if (T.PendingIpcRecv.isValid())
      emit(T, OpKind::IpcRecv, T.PendingIpcRecv.value());
    pushEntryFrame(T);
    pushStep(TaskIdx);
  }

  /// Starts an event task picked by its looper at time \p Now.
  void startEvent(uint32_t TaskIdx, uint64_t Now) {
    RtTask &T = Tasks[TaskIdx];
    assert(!T.Started && "event started twice");
    T.Started = true;
    T.Time = Now;
    T.State = TaskState::Runnable;
    ++Stats.EventsProcessed;
    emit(T, OpKind::TaskBegin);
    if (T.FromListener.isValid() &&
        M.listenerDef(T.FromListener).Instrumented)
      emit(T, OpKind::PerformListener, T.FromListener.value());
    pushEntryFrame(T);
    pushStep(TaskIdx);
  }

  /// Ends \p T: emits the end record, wakes joiners, frees its looper.
  void endTask(uint32_t TaskIdx, uint64_t Now) {
    RtTask &T = Tasks[TaskIdx];
    T.Time = std::max(T.Time, Now);
    emit(T, OpKind::TaskEnd);
    T.State = TaskState::Done;
    // Wake joiners (they re-execute their join instruction).
    for (uint32_t I = 0, E = static_cast<uint32_t>(Tasks.size()); I != E;
         ++I) {
      RtTask &J = Tasks[I];
      if (J.State == TaskState::Blocked && J.Block == BlockKind::Join &&
          J.BlockRef == TaskIdx)
        wake(I, T.Time);
    }
    if (T.Kind == TaskKind::Event) {
      RtQueue &Q = Queues[T.Queue.index()];
      assert(Q.Busy && "event ended on an idle queue");
      Q.Busy = false;
      schedulePoll(T.Queue.value(), T.Time);
    }
    releaseConstraintsFor(TaskIdx, T.Time);
  }

  void wake(uint32_t TaskIdx, uint64_t Now) {
    RtTask &T = Tasks[TaskIdx];
    assert(T.State == TaskState::Blocked && "waking a non-blocked task");
    T.State = TaskState::Runnable;
    T.Block = BlockKind::None;
    T.Time = std::max(T.Time, Now);
    pushStep(TaskIdx);
  }

  /// Aborts \p T with a null-pointer exception: unwinds all frames with
  /// throw-marked exits, then ends the task.
  void throwNpe(uint32_t TaskIdx) {
    RtTask &T = Tasks[TaskIdx];
    ++Stats.NullPointerExceptions;
    if (!T.Frames.empty())
      Stats.NpeSites.push_back(
          {T.Frames.back().Method, T.Frames.back().Pc});
    while (!T.Frames.empty()) {
      emit(T, OpKind::MethodExit, T.Frames.back().FrameId, /*Throw=*/1);
      T.Frames.pop_back();
    }
    endTask(TaskIdx, T.Time);
  }

  // --- Event queue handling ---------------------------------------------

  void enqueueEvent(uint32_t QueueIdx, uint32_t TaskIdx, uint64_t ReadyTime,
                    bool AtFront, uint64_t Now) {
    RtQueue &Q = Queues[QueueIdx];
    if (AtFront)
      Q.Entries.push_front({TaskIdx, ReadyTime});
    else
      Q.Entries.push_back({TaskIdx, ReadyTime});
    schedulePoll(QueueIdx, std::max(Now, ReadyTime));
  }

  void poll(uint32_t QueueIdx, uint64_t Now) {
    RtQueue &Q = Queues[QueueIdx];
    Q.ScheduledPollTime = UINT64_MAX;
    if (Q.Busy || Q.Entries.empty())
      return;
    // Pick the first entry in queue order whose time constraint elapsed
    // (Section 2.1: ready events are processed in the order queued).
    // Held entries are skipped in place -- they keep their queue
    // position and become eligible when their constraint releases.
    for (auto It = Q.Entries.begin(); It != Q.Entries.end(); ++It) {
      if (isHeld(It->TaskIndex))
        continue;
      if (It->ReadyTime <= Now) {
        uint32_t TaskIdx = It->TaskIndex;
        Q.Entries.erase(It);
        Q.Busy = true;
        startEvent(TaskIdx, Now);
        return;
      }
    }
    // Nothing ready yet: wake up when the earliest dispatchable entry
    // becomes ready.  Held entries must not drive the wakeup -- a poll
    // re-armed at a held entry's elapsed ReadyTime would spin; their
    // release re-polls the queue instead.
    uint64_t Earliest = UINT64_MAX;
    for (const QueueEntry &E : Q.Entries)
      if (!isHeld(E.TaskIndex))
        Earliest = std::min(Earliest, E.ReadyTime);
    if (Earliest != UINT64_MAX)
      schedulePoll(QueueIdx, Earliest);
  }

  // --- Interpretation ------------------------------------------------------

  /// Outcome of one instruction step.
  enum class StepResult { Continue, Yield, Fatal };

  StepResult step(uint32_t TaskIdx);
  Status runAll();

  ObjectId regObject(const Frame &F, Reg R) const {
    assert(R != NoReg && "reading the no-register sentinel");
    assert(F.Regs[R].IsObject && "register does not hold an object");
    return F.Regs[R].object();
  }

  /// Creates an event task for send/sendAtFront/listener dispatch and
  /// returns its index.
  uint32_t createEventTask(std::string_view Name, QueueId Queue,
                           MethodId Handler, bool HasArg, Value Arg,
                           uint64_t DelayMs, bool AtFront, TaskId Parent,
                           ListenerId FromListener) {
    ProcessId Proc = M.queueDef(Queue).Process;
    return createTask(TaskKind::Event, Name, Proc, Queue, Handler, HasArg,
                      Arg, /*External=*/false, /*IsLooper=*/false, DelayMs,
                      AtFront, Parent, FromListener);
  }
};

Runtime::Impl::StepResult Runtime::Impl::step(uint32_t TaskIdx) {
  RtTask &T = Tasks[TaskIdx];
  assert(!T.Frames.empty() && "stepping a task with no frames");
  Frame &F = T.Frames.back();
  const MethodDef &Def = M.methodDef(F.Method);
  assert(F.Pc < Def.Code.size() && "pc ran past method end");
  const Instr &I = Def.Code[F.Pc];

  if (++Stats.InstructionsExecuted > Opt.MaxInstructions) {
    Failure = Status::error("instruction cap exceeded; runaway scenario?");
    return StepResult::Fatal;
  }
  spinWork(Opt.BaselineWorkUnits);

  uint64_t Now = T.Time;
  // Most instructions complete: advance time up front and pc at the end.
  // Blocking instructions undo this by returning before `++F.Pc`.
  auto complete = [&]() {
    ++F.Pc;
    T.Time = Now + Opt.InstrCostMicros;
  };

  switch (I.Op) {
  case Opcode::Nop:
    complete();
    break;
  case Opcode::ConstNull:
    F.Regs[I.A] = Value::makeNull();
    complete();
    break;
  case Opcode::ConstInt:
    F.Regs[I.A] = Value::makeScalar(I.Imm);
    complete();
    break;
  case Opcode::Move:
    F.Regs[I.A] = F.Regs[I.B];
    complete();
    break;
  case Opcode::NewInstance:
    F.Regs[I.A] = Value::makeObject(Heap.allocate(ClassId(I.Ref)));
    complete();
    break;

  case Opcode::IGetObject: {
    ObjectId Recv = regObject(F, I.B);
    if (!Recv.value()) {
      throwNpe(TaskIdx);
      return StepResult::Yield;
    }
    emit(T, OpKind::Deref, Recv.value(),
         static_cast<uint64_t>(DerefKind::FieldAccess));
    VarId Var = Heap.varFor(Recv, FieldId(I.Ref));
    uint64_t Bits = Heap.getField(Recv, FieldId(I.Ref));
    emit(T, OpKind::PtrRead, Var.value(), Bits);
    F.Regs[I.A] = Value::makeObject(ObjectId(static_cast<uint32_t>(Bits)));
    complete();
    break;
  }
  case Opcode::IPutObject: {
    ObjectId Recv = regObject(F, I.A);
    if (!Recv.value()) {
      throwNpe(TaskIdx);
      return StepResult::Yield;
    }
    emit(T, OpKind::Deref, Recv.value(),
         static_cast<uint64_t>(DerefKind::FieldAccess));
    ObjectId Val = regObject(F, I.B);
    VarId Var = Heap.varFor(Recv, FieldId(I.Ref));
    Heap.setField(Recv, FieldId(I.Ref), Val.value());
    emit(T, OpKind::PtrWrite, Var.value(), Val.value(), Recv.value());
    complete();
    break;
  }
  case Opcode::SGetObject: {
    VarId Var = Heap.varForStatic(FieldId(I.Ref));
    uint64_t Bits = Heap.getStatic(FieldId(I.Ref));
    emit(T, OpKind::PtrRead, Var.value(), Bits);
    F.Regs[I.A] = Value::makeObject(ObjectId(static_cast<uint32_t>(Bits)));
    complete();
    break;
  }
  case Opcode::SPutObject: {
    ObjectId Val = regObject(F, I.A);
    VarId Var = Heap.varForStatic(FieldId(I.Ref));
    Heap.setStatic(FieldId(I.Ref), Val.value());
    emit(T, OpKind::PtrWrite, Var.value(), Val.value(), 0);
    complete();
    break;
  }
  case Opcode::IGet: {
    ObjectId Recv = regObject(F, I.B);
    if (!Recv.value()) {
      throwNpe(TaskIdx);
      return StepResult::Yield;
    }
    emit(T, OpKind::Deref, Recv.value(),
         static_cast<uint64_t>(DerefKind::FieldAccess));
    VarId Var = Heap.varFor(Recv, FieldId(I.Ref));
    uint64_t Bits = Heap.getField(Recv, FieldId(I.Ref));
    emit(T, OpKind::Read, Var.value(), Bits);
    F.Regs[I.A] = Value::makeScalar(static_cast<int64_t>(Bits));
    complete();
    break;
  }
  case Opcode::IPut: {
    ObjectId Recv = regObject(F, I.A);
    if (!Recv.value()) {
      throwNpe(TaskIdx);
      return StepResult::Yield;
    }
    emit(T, OpKind::Deref, Recv.value(),
         static_cast<uint64_t>(DerefKind::FieldAccess));
    VarId Var = Heap.varFor(Recv, FieldId(I.Ref));
    Heap.setField(Recv, FieldId(I.Ref),
                  static_cast<uint64_t>(F.Regs[I.B].scalar()));
    emit(T, OpKind::Write, Var.value(),
         static_cast<uint64_t>(F.Regs[I.B].scalar()));
    complete();
    break;
  }
  case Opcode::SGet: {
    VarId Var = Heap.varForStatic(FieldId(I.Ref));
    uint64_t Bits = Heap.getStatic(FieldId(I.Ref));
    emit(T, OpKind::Read, Var.value(), Bits);
    F.Regs[I.A] = Value::makeScalar(static_cast<int64_t>(Bits));
    complete();
    break;
  }
  case Opcode::SPut: {
    VarId Var = Heap.varForStatic(FieldId(I.Ref));
    Heap.setStatic(FieldId(I.Ref),
                   static_cast<uint64_t>(F.Regs[I.A].scalar()));
    emit(T, OpKind::Write, Var.value(),
         static_cast<uint64_t>(F.Regs[I.A].scalar()));
    complete();
    break;
  }

  case Opcode::InvokeVirtual:
  case Opcode::InvokeStatic: {
    bool Virtual = I.Op == Opcode::InvokeVirtual;
    ObjectId Recv;
    if (Virtual) {
      Recv = regObject(F, I.A);
      if (!Recv.value()) {
        throwNpe(TaskIdx);
        return StepResult::Yield;
      }
      emit(T, OpKind::Deref, Recv.value(),
           static_cast<uint64_t>(DerefKind::Invoke));
    }
    Reg ArgReg = Virtual ? I.B : I.A;
    Value ArgVal;
    bool HasArgVal = ArgReg != NoReg;
    if (HasArgVal)
      ArgVal = F.Regs[ArgReg];
    ++F.Pc; // Caller resumes after the invoke.

    const MethodDef &Callee = M.methodDef(MethodId(I.Ref));
    Frame NewFrame;
    NewFrame.Method = MethodId(I.Ref);
    NewFrame.FrameId = ++FrameIdCounter;
    NewFrame.Regs.assign(Callee.NumRegs, Value());
    if (Virtual) {
      if (Callee.NumRegs > 0)
        NewFrame.Regs[0] = Value::makeObject(Recv);
      if (HasArgVal && Callee.NumRegs > 1)
        NewFrame.Regs[1] = ArgVal;
    } else if (HasArgVal && Callee.NumRegs > 0) {
      NewFrame.Regs[0] = ArgVal;
    }
    T.Frames.push_back(std::move(NewFrame));
    // Stamp the enter record at this instruction's time; advancing the
    // clock first would emit past work other tasks still have pending.
    emit(T, OpKind::MethodEnter, T.Frames.back().FrameId);
    T.Time = Now + Opt.InstrCostMicros;
    break;
  }
  case Opcode::ReturnVoid: {
    emit(T, OpKind::MethodExit, F.FrameId, /*Throw=*/0);
    T.Frames.pop_back();
    if (T.Frames.empty()) {
      // The end record must carry this instruction's timestamp: other
      // tasks may have work pending at Now, and a later stamp here would
      // break the trace's global time order.
      endTask(TaskIdx, Now);
      return StepResult::Yield;
    }
    T.Time = Now + Opt.InstrCostMicros;
    break;
  }

  case Opcode::IfEqz: {
    ObjectId Obj = regObject(F, I.A);
    bool Taken = Obj.value() == 0;
    // Logged only when NOT taken: the fall-through path proves non-null.
    if (!Taken)
      emit(T, OpKind::Branch, static_cast<uint64_t>(BranchKind::IfEqz),
           Obj.value(), F.Pc + I.Imm);
    uint32_t Next = Taken ? F.Pc + I.Imm : F.Pc + 1;
    F.Pc = Next;
    T.Time = Now + Opt.InstrCostMicros;
    break;
  }
  case Opcode::IfNez: {
    ObjectId Obj = regObject(F, I.A);
    bool Taken = Obj.value() != 0;
    // Logged only when taken: the target path proves non-null.
    if (Taken)
      emit(T, OpKind::Branch, static_cast<uint64_t>(BranchKind::IfNez),
           Obj.value(), F.Pc + I.Imm);
    uint32_t Next = Taken ? F.Pc + I.Imm : F.Pc + 1;
    F.Pc = Next;
    T.Time = Now + Opt.InstrCostMicros;
    break;
  }
  case Opcode::IfEq: {
    ObjectId A = regObject(F, I.A);
    ObjectId B = regObject(F, I.B);
    bool Taken = A.value() == B.value();
    // Logged only when taken and the tested pointer is non-null (equality
    // with a live object proves non-null, commonly `ptr == this`).
    if (Taken && A.value() != 0)
      emit(T, OpKind::Branch, static_cast<uint64_t>(BranchKind::IfEq),
           A.value(), F.Pc + I.Imm);
    uint32_t Next = Taken ? F.Pc + I.Imm : F.Pc + 1;
    F.Pc = Next;
    T.Time = Now + Opt.InstrCostMicros;
    break;
  }
  case Opcode::IfIntEqz:
  case Opcode::IfIntNez: {
    bool Zero = F.Regs[I.A].scalar() == 0;
    bool Taken = (I.Op == Opcode::IfIntEqz) ? Zero : !Zero;
    uint32_t Next = Taken ? F.Pc + I.Imm : F.Pc + 1;
    F.Pc = Next;
    T.Time = Now + Opt.InstrCostMicros;
    break;
  }
  case Opcode::Goto:
    F.Pc += I.Imm;
    T.Time = Now + Opt.InstrCostMicros;
    break;
  case Opcode::AddInt:
    F.Regs[I.A] = Value::makeScalar(F.Regs[I.B].scalar() + I.Imm);
    complete();
    break;

  case Opcode::MonitorEnter: {
    LockState &L = Locks[I.Ref];
    if (L.HolderTask >= 0) {
      // Contended: block and retry when released.
      T.State = TaskState::Blocked;
      T.Block = BlockKind::Lock;
      T.BlockRef = I.Ref;
      return StepResult::Yield;
    }
    L.HolderTask = TaskIdx;
    T.HeldLocks.push_back(I.Ref);
    emit(T, OpKind::LockAcquire, I.Ref);
    complete();
    break;
  }
  case Opcode::MonitorExit: {
    LockState &L = Locks[I.Ref];
    assert(L.HolderTask == static_cast<int64_t>(TaskIdx) &&
           "monitor-exit by non-holder");
    assert(!T.HeldLocks.empty() && T.HeldLocks.back() == I.Ref &&
           "unbalanced monitor-exit");
    emit(T, OpKind::LockRelease, I.Ref);
    T.HeldLocks.pop_back();
    L.HolderTask = -1;
    complete();
    // Wake lock waiters to retry the acquisition.
    for (uint32_t J = 0, E = static_cast<uint32_t>(Tasks.size()); J != E;
         ++J) {
      RtTask &W = Tasks[J];
      if (W.State == TaskState::Blocked && W.Block == BlockKind::Lock &&
          W.BlockRef == I.Ref)
        wake(J, T.Time);
    }
    break;
  }
  case Opcode::WaitMonitor: {
    MonitorState &Mon = Monitors[I.Ref];
    if (T.Notified || Mon.PendingNotifies > 0) {
      if (T.Notified)
        T.Notified = false;
      else
        --Mon.PendingNotifies;
      emit(T, OpKind::Wait, I.Ref);
      complete();
      break;
    }
    T.State = TaskState::Blocked;
    T.Block = BlockKind::Monitor;
    T.BlockRef = I.Ref;
    Mon.Waiters.push_back(TaskIdx);
    return StepResult::Yield;
  }
  case Opcode::NotifyMonitor: {
    MonitorState &Mon = Monitors[I.Ref];
    emit(T, OpKind::Notify, I.Ref);
    complete();
    if (!Mon.Waiters.empty()) {
      uint32_t WaiterIdx = Mon.Waiters.front();
      Mon.Waiters.pop_front();
      Tasks[WaiterIdx].Notified = true;
      wake(WaiterIdx, T.Time);
      // `T` may be a dangling reference if wake() reallocated; it does
      // not (wake never grows Tasks), so continuing is safe.
    } else {
      ++Mon.PendingNotifies;
    }
    break;
  }

  case Opcode::ForkThread: {
    Reg ArgReg = I.B;
    bool HasArgVal = ArgReg != NoReg;
    Value ArgVal = HasArgVal ? F.Regs[ArgReg] : Value();
    std::string Name =
        formatString("thread:%s", M.methodName(MethodId(I.Ref)).c_str());
    uint32_t Child = createTask(
        TaskKind::Thread, Name, T.Process, QueueId::invalid(),
        MethodId(I.Ref), HasArgVal, ArgVal, /*External=*/false,
        /*IsLooper=*/false, 0, false, T.Id, ListenerId::invalid());
    // Task creation may reallocate Tasks; re-fetch this task and frame.
    RtTask &T2 = Tasks[TaskIdx];
    Frame &F2 = T2.Frames.back();
    F2.Regs[I.A] = Value::makeScalar(Child);
    emit(T2, OpKind::Fork, Child);
    ++F2.Pc;
    T2.Time = Now + Opt.InstrCostMicros;
    Tasks[Child].Time = T2.Time + Opt.ForkLatencyMicros;
    push(Tasks[Child].Time, ItemKind::StartThread, Child);
    break;
  }
  case Opcode::JoinThread: {
    int64_t Child = F.Regs[I.A].scalar();
    assert(Child >= 0 && Child < static_cast<int64_t>(Tasks.size()) &&
           "join of an invalid thread handle");
    RtTask &Target = Tasks[static_cast<uint32_t>(Child)];
    assert(Target.Kind == TaskKind::Thread && "join target is not a thread");
    if (Target.State != TaskState::Done) {
      T.State = TaskState::Blocked;
      T.Block = BlockKind::Join;
      T.BlockRef = static_cast<uint32_t>(Child);
      return StepResult::Yield;
    }
    emit(T, OpKind::Join, Target.Id.value());
    complete();
    break;
  }

  case Opcode::SendEvent:
  case Opcode::SendEventAtFront:
  case Opcode::SendEventAtTime: {
    bool AtFront = I.Op == Opcode::SendEventAtFront;
    uint64_t DelayMs = AtFront ? 0 : static_cast<uint64_t>(I.Imm);
    if (I.Op == Opcode::SendEventAtTime) {
      // sendMessageAtTime: convert the absolute constraint into the
      // equivalent delay at send time (an elapsed target is immediate).
      uint64_t AtMicros = static_cast<uint64_t>(I.Imm) * 1000;
      uint64_t SendTime = Now + Opt.InstrCostMicros;
      DelayMs = AtMicros > SendTime ? (AtMicros - SendTime) / 1000 : 0;
    }
    Reg ArgReg = I.A;
    bool HasArgVal = ArgReg != NoReg;
    Value ArgVal = HasArgVal ? F.Regs[ArgReg] : Value();
    uint32_t EventIdx = createEventTask(
        M.methodName(MethodId(I.Ref)), QueueId(I.Aux), MethodId(I.Ref),
        HasArgVal, ArgVal, DelayMs, AtFront, T.Id, ListenerId::invalid());
    RtTask &T2 = Tasks[TaskIdx];
    Frame &F2 = T2.Frames.back();
    emit(T2, AtFront ? OpKind::SendAtFront : OpKind::Send, EventIdx,
         DelayMs, I.Aux);
    ++F2.Pc;
    T2.Time = Now + Opt.InstrCostMicros;
    enqueueEvent(I.Aux, EventIdx, T2.Time + DelayMs * 1000, AtFront,
                 T2.Time);
    break;
  }

  case Opcode::RegisterListener: {
    ListenerRegistration &Reg_ = Listeners[I.Ref];
    Reg_.Registered = true;
    Reg_.Handler = MethodId(I.Aux);
    Reg_.HasArg = I.A != NoReg;
    if (Reg_.HasArg)
      Reg_.Arg = F.Regs[I.A];
    if (M.listenerDef(ListenerId(I.Ref)).Instrumented)
      emit(T, OpKind::RegisterListener, I.Ref);
    complete();
    break;
  }
  case Opcode::TriggerListener: {
    const ListenerRegistration Reg_ = Listeners[I.Ref];
    if (!Reg_.Registered) {
      complete();
      break;
    }
    QueueId Queue = M.listenerDef(ListenerId(I.Ref)).DeliveryQueue;
    uint32_t EventIdx = createEventTask(
        M.methodName(Reg_.Handler), Queue, Reg_.Handler, Reg_.HasArg,
        Reg_.Arg, 0, false, T.Id, ListenerId(I.Ref));
    RtTask &T2 = Tasks[TaskIdx];
    Frame &F2 = T2.Frames.back();
    // The framework posts a message for the callback, so a send is traced
    // even when the listener itself lives in an uninstrumented package.
    emit(T2, OpKind::Send, EventIdx, 0, Queue.value());
    ++F2.Pc;
    T2.Time = Now + Opt.InstrCostMicros;
    enqueueEvent(Queue.value(), EventIdx, T2.Time, false, T2.Time);
    break;
  }

  case Opcode::BinderCall: {
    uint32_t Txn = ++TxnCounter;
    emit(T, OpKind::IpcSend, Txn);
    Reg ArgReg = I.A;
    bool HasArgVal = ArgReg != NoReg;
    Value ArgVal = HasArgVal ? F.Regs[ArgReg] : Value();
    std::string Name =
        formatString("rpc:%s", M.methodName(MethodId(I.Ref)).c_str());
    uint32_t Child = createTask(
        TaskKind::Thread, Name, ProcessId(I.Aux), QueueId::invalid(),
        MethodId(I.Ref), HasArgVal, ArgVal, /*External=*/false,
        /*IsLooper=*/false, 0, false, T.Id, ListenerId::invalid());
    Tasks[Child].PendingIpcRecv = TransactionId(Txn);
    RtTask &T2 = Tasks[TaskIdx];
    Frame &F2 = T2.Frames.back();
    ++F2.Pc;
    T2.Time = Now + Opt.InstrCostMicros;
    Tasks[Child].Time = T2.Time + Opt.RpcLatencyMicros;
    push(Tasks[Child].Time, ItemKind::StartThread, Child);
    break;
  }

  case Opcode::PipeWrite: {
    uint32_t Txn = ++TxnCounter;
    emit(T, OpKind::IpcSend, Txn);
    Value Msg = I.A != NoReg ? F.Regs[I.A] : Value();
    Pipes[I.Ref].Messages.emplace_back(Txn, Msg);
    complete();
    // Wake blocked readers to retry their read.
    for (uint32_t J = 0, E = static_cast<uint32_t>(Tasks.size()); J != E;
         ++J) {
      RtTask &W = Tasks[J];
      if (W.State == TaskState::Blocked && W.Block == BlockKind::Pipe &&
          W.BlockRef == I.Ref)
        wake(J, T.Time);
    }
    break;
  }
  case Opcode::PipeRead: {
    PipeState &P = Pipes[I.Ref];
    if (P.Messages.empty()) {
      T.State = TaskState::Blocked;
      T.Block = BlockKind::Pipe;
      T.BlockRef = I.Ref;
      return StepResult::Yield;
    }
    auto [Txn, Msg] = P.Messages.front();
    P.Messages.pop_front();
    emit(T, OpKind::IpcRecv, Txn);
    if (I.A != NoReg)
      F.Regs[I.A] = Msg;
    complete();
    break;
  }
  case Opcode::Work: {
    spinWork(static_cast<uint32_t>(I.Imm) * Opt.BaselineWorkUnits);
    ++F.Pc;
    T.Time = Now + static_cast<uint64_t>(I.Imm) * Opt.InstrCostMicros;
    break;
  }
  case Opcode::Sleep: {
    // A blocking sleep: simulated time passes, host time does not.
    ++F.Pc;
    T.Time = Now + static_cast<uint64_t>(I.Imm);
    break;
  }
  }
  return Tasks[TaskIdx].State == TaskState::Runnable ? StepResult::Continue
                                                     : StepResult::Yield;
}

Status Runtime::Impl::runAll() {
  if (Status S = verifyModule(M); !S.ok())
    return S;

  // Mirror the module's static tables into the trace so method/queue/
  // listener ids coincide between IR and trace.
  if (Opt.Tracing) {
    Trace &Tr = Logger.trace();
    for (uint32_t I = 0, E = static_cast<uint32_t>(M.numMethods()); I != E;
         ++I) {
      const MethodDef &Def = M.methodDef(MethodId(I));
      MethodInfo Info;
      Info.Name = Tr.names().intern(M.names().str(Def.Name));
      Info.CodeSize = static_cast<uint32_t>(Def.Code.size());
      Tr.addMethod(Info);
    }
    for (uint32_t I = 0, E = static_cast<uint32_t>(M.numListeners()); I != E;
         ++I) {
      const ListenerDef &Def = M.listenerDef(ListenerId(I));
      ListenerInfo Info;
      Info.Name = Tr.names().intern(M.names().str(Def.Name));
      Info.Instrumented = Def.Instrumented;
      Tr.addListener(Info);
    }
  }

  Monitors.assign(M.numMonitors(), MonitorState());
  Locks.assign(M.numLocks(), LockState());
  Pipes.assign(M.numPipes(), PipeState());
  Listeners.assign(M.numListeners(), ListenerRegistration());

  // One looper thread per queue.
  Queues.assign(M.numQueues(), RtQueue());
  for (uint32_t Q = 0, E = static_cast<uint32_t>(M.numQueues()); Q != E;
       ++Q) {
    const QueueDef &Def = M.queueDef(QueueId(Q));
    std::string Name =
        formatString("looper:%s", M.names().str(Def.Name).c_str());
    uint32_t LooperIdx = createTask(
        TaskKind::Thread, Name, Def.Process, QueueId(Q),
        MethodId::invalid(), false, Value(), /*External=*/false,
        /*IsLooper=*/true, 0, false, TaskId::invalid(),
        ListenerId::invalid());
    Queues[Q].LooperTaskIndex = LooperIdx;
    RtTask &Looper = Tasks[LooperIdx];
    Looper.Started = true;
    Looper.State = TaskState::Runnable; // hosts events; runs no code
    emit(Looper, OpKind::TaskBegin);
    if (Opt.Tracing)
      Logger.trace().queueInfoMutable(QueueId(Q)).Looper = Looper.Id;
  }

  // Boot threads.
  for (const BootThreadSpec &Spec : S.BootThreads) {
    uint32_t Idx = createTask(
        TaskKind::Thread,
        Spec.Name.empty() ? M.methodName(Spec.Body) : Spec.Name,
        Spec.Process, QueueId::invalid(), Spec.Body, false, Value(),
        /*External=*/false, /*IsLooper=*/false, 0, false,
        TaskId::invalid(), ListenerId::invalid());
    Tasks[Idx].Time = Spec.StartMicros;
    push(Spec.StartMicros, ItemKind::StartThread, Idx);
  }

  // External event injections.
  for (uint32_t I = 0, E = static_cast<uint32_t>(S.ExternalEvents.size());
       I != E; ++I)
    push(S.ExternalEvents[I].AtMicros, ItemKind::Inject, I);

  Timer CpuTimer;
  uint64_t LastTime = 0;

  // The drain loop runs to quiescence; if schedule-override holds are
  // still pending then (their after-task never completed), they expire
  // and the revived work drains under the default order -- an override
  // can reorder a run but never wedge it.
  do {
  while (!Heap_.empty()) {
    SchedItem Item = Heap_.top();
    Heap_.pop();
    LastTime = std::max(LastTime, Item.Time);

    switch (Item.Kind) {
    case ItemKind::Inject: {
      const ExternalEventSpec &Spec = S.ExternalEvents[Item.Index];
      std::string Name =
          Spec.Name.empty() ? M.methodName(Spec.Handler) : Spec.Name;
      uint32_t EventIdx = createTask(
          TaskKind::Event, Name, M.queueDef(Spec.Queue).Process,
          Spec.Queue, Spec.Handler, false, Value(), /*External=*/true,
          /*IsLooper=*/false, 0, false, TaskId::invalid(),
          ListenerId::invalid());
      Tasks[EventIdx].Time = Item.Time;
      enqueueEvent(Spec.Queue.value(), EventIdx, Item.Time, false,
                   Item.Time);
      break;
    }
    case ItemKind::Poll:
      poll(Item.Index, Item.Time);
      break;
    case ItemKind::StartThread:
      if (isHeld(Item.Index)) {
        // Parked until the constraint's after-task completes (or the
        // hold expires at quiescence).
        ParkedThreads.push_back(Item.Index);
        break;
      }
      startThread(Item.Index, Item.Time);
      break;
    case ItemKind::Step: {
      RtTask &T = Tasks[Item.Index];
      T.StepQueued = false;
      if (T.State != TaskState::Runnable)
        break;
      // Burst: keep stepping while this task remains the earliest work.
      // At least one instruction executes per dispatch (otherwise two
      // tasks parked at the same timestamp would yield to each other
      // forever); afterwards we stop as soon as any other work is due at
      // or before this task's clock, because running past it could emit
      // records out of global time order.
      for (unsigned Burst = 0; Burst != 256; ++Burst) {
        StepResult R = step(Item.Index);
        if (R == StepResult::Fatal)
          return Failure;
        if (R == StepResult::Yield)
          break;
        if (Tasks[Item.Index].State != TaskState::Runnable)
          break;
        if (!Heap_.empty() && Tasks[Item.Index].Time >= Heap_.top().Time)
          break;
      }
      if (Tasks[Item.Index].State == TaskState::Runnable)
        pushStep(Item.Index);
      // Bursts advance the task clock (and record times) past the popped
      // item's time; the end-of-run timestamp must cover them.
      LastTime = std::max(LastTime, Tasks[Item.Index].Time);
      break;
    }
    }
  }
  } while (expireHolds(LastTime));

  // Quiescence: close looper tasks and count stragglers.
  Stats.SimEndMicros = LastTime;
  for (RtQueue &Q : Queues) {
    RtTask &Looper = Tasks[Q.LooperTaskIndex];
    Looper.Time = std::max(Looper.Time, LastTime);
    emit(Looper, OpKind::TaskEnd);
    Looper.State = TaskState::Done;
  }
  for (const RtTask &T : Tasks)
    if (T.State == TaskState::Blocked)
      ++Stats.BlockedAtQuiescence;

  Stats.HostCpuNanos = CpuTimer.elapsedCpuNanos();
  return Status::success();
}

Runtime::Runtime(const Scenario &S, const RuntimeOptions &Options)
    : I(std::make_unique<Impl>(S, Options)) {
  // Queue side-table registration needs names before run(); do it here so
  // trace queue ids equal module queue ids.
  if (Options.Tracing) {
    Trace &Tr = I->Logger.trace();
    const Module &M = S.module();
    for (uint32_t Q = 0, E = static_cast<uint32_t>(M.numQueues()); Q != E;
         ++Q) {
      QueueInfo Info;
      Info.Name = Tr.names().intern(M.names().str(M.queueDef(QueueId(Q))
                                                      .Name));
      Info.Looper = TaskId::invalid(); // patched in runAll()
      Tr.addQueue(Info);
    }
  }
}

Runtime::~Runtime() = default;

Status Runtime::run() { return I->runAll(); }

const RuntimeStats &Runtime::stats() const { return I->Stats; }

Trace Runtime::takeTrace() {
  assert(I->Opt.Tracing && "takeTrace on an untraced run");
  assert(!I->TraceTaken && "trace taken twice");
  I->TraceTaken = true;
  return I->Logger.take();
}

size_t Runtime::loggerStreamBytes() const { return I->Logger.streamBytes(); }

Trace cafa::runScenario(const Scenario &S, const RuntimeOptions &Options,
                        RuntimeStats *StatsOut) {
  Runtime Rt(S, Options);
  Status St = Rt.run();
  if (!St.ok())
    reportFatalError(St.message().c_str());
  if (StatsOut)
    *StatsOut = Rt.stats();
  return Rt.takeTrace();
}
