//===- rt/Scenario.h - A runnable simulation setup -------------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Scenario bundles a mini-Dalvik module with the stimuli that drive a
/// run: external input events (user taps, sensor callbacks, network
/// completions -- Section 3's "entities external to an application") and
/// bootstrap threads (the app's main/onCreate path).  The application
/// models in src/apps each produce one Scenario.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_RT_SCENARIO_H
#define CAFA_RT_SCENARIO_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace cafa {

/// One event injected by the external world at a fixed simulated time.
struct ExternalEventSpec {
  /// Injection time in simulated microseconds.
  uint64_t AtMicros = 0;
  QueueId Queue;
  MethodId Handler;
  /// Display name ("onPause", "onLocationChanged", ...); defaults to the
  /// handler's name when empty.
  std::string Name;
};

/// One thread started directly by the scenario (the app bootstrap).
struct BootThreadSpec {
  uint64_t StartMicros = 0;
  MethodId Body;
  ProcessId Process;
  std::string Name;
};

/// A complete simulation setup.
struct Scenario {
  /// Display name of the modeled application.
  std::string AppName;
  /// The program and topology.  Held by shared_ptr so app models can be
  /// constructed once and run many times (benchmarks re-run scenarios).
  std::shared_ptr<Module> Program;
  std::vector<ExternalEventSpec> ExternalEvents;
  std::vector<BootThreadSpec> BootThreads;

  const Module &module() const { return *Program; }
};

} // namespace cafa

#endif // CAFA_RT_SCENARIO_H
