//===- rt/Value.h - Runtime register values --------------------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tagged values held in interpreter registers.  Object fields store bare
/// ObjectIds and scalar fields store bare integers (fields are statically
/// typed), but registers are untyped in the IR so they carry a tag.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_RT_VALUE_H
#define CAFA_RT_VALUE_H

#include "support/Ids.h"

#include <cstdint>

namespace cafa {

/// One register slot: either a scalar integer or an object reference.
/// ObjectId value 0 represents null.
struct Value {
  bool IsObject = false;
  uint64_t Bits = 0;

  static Value makeScalar(int64_t V) {
    Value R;
    R.IsObject = false;
    R.Bits = static_cast<uint64_t>(V);
    return R;
  }
  static Value makeObject(ObjectId Obj) {
    Value R;
    R.IsObject = true;
    R.Bits = Obj.isValid() ? Obj.value() : 0;
    return R;
  }
  static Value makeNull() {
    Value R;
    R.IsObject = true;
    R.Bits = 0;
    return R;
  }

  int64_t scalar() const { return static_cast<int64_t>(Bits); }
  /// Returns the referenced object; ObjectId(0) encodes null.
  ObjectId object() const { return ObjectId(static_cast<uint32_t>(Bits)); }
  bool isNullRef() const { return IsObject && Bits == 0; }
};

/// The null object id (object ids are allocated starting from 1).
inline ObjectId nullObject() { return ObjectId(0); }

} // namespace cafa

#endif // CAFA_RT_VALUE_H
