//===- rt/ObjectHeap.h - Simulated VM heap ---------------------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated VM heap: object allocation with unique ids (Section 5.2's
/// per-object unique IDs), per-object field storage, static field storage,
/// and the interning of (object, field) pairs into VarIds -- the memory
/// cells at which races are detected.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_RT_OBJECTHEAP_H
#define CAFA_RT_OBJECTHEAP_H

#include "ir/Module.h"
#include "rt/Value.h"
#include "support/Ids.h"

#include <cassert>
#include <unordered_map>
#include <vector>

namespace cafa {

/// Identifies the memory cell behind a VarId (for report rendering).
struct VarDesc {
  /// Owning object; invalid for static fields.
  ObjectId Object;
  FieldId Field;
};

/// Heap of the simulated VM.  Object ids are dense, allocated from 1
/// (0 is null), and never reused -- exactly the unique-object-id scheme
/// the instrumented Dalvik VM uses.
class ObjectHeap {
public:
  explicit ObjectHeap(const Module &M) : M(M) {}

  /// Allocates a new object of class \p Class; fields start null/zero.
  ObjectId allocate(ClassId Class) {
    Objects.emplace_back();
    Objects.back().Class = Class;
    Objects.back().Fields.assign(M.numFields(), 0);
    return ObjectId(static_cast<uint32_t>(Objects.size()));
  }

  /// Returns the raw bits of instance field \p Field of \p Obj.
  uint64_t getField(ObjectId Obj, FieldId Field) const {
    return slot(Obj)[Field.index()];
  }
  /// Stores raw bits into instance field \p Field of \p Obj.
  void setField(ObjectId Obj, FieldId Field, uint64_t Bits) {
    slotMutable(Obj)[Field.index()] = Bits;
  }

  /// Returns the raw bits of static field \p Field.
  uint64_t getStatic(FieldId Field) const {
    assert(Field.index() < M.numFields() && "static field out of range");
    auto It = Statics.find(Field.value());
    return It == Statics.end() ? 0 : It->second;
  }
  /// Stores raw bits into static field \p Field.
  void setStatic(FieldId Field, uint64_t Bits) {
    assert(Field.index() < M.numFields() && "static field out of range");
    Statics[Field.value()] = Bits;
  }

  /// Interns the memory cell (\p Obj instance field / static field) into
  /// a VarId; deterministic across runs.
  VarId varFor(ObjectId Obj, FieldId Field) {
    uint64_t Key = (static_cast<uint64_t>(Obj.isValid() ? Obj.value() : 0)
                    << 32) |
                   Field.value();
    auto [It, Inserted] = VarIndex.emplace(
        Key, static_cast<uint32_t>(VarTable.size()));
    if (Inserted)
      VarTable.push_back({Obj, Field});
    return VarId(It->second);
  }
  VarId varForStatic(FieldId Field) {
    return varFor(ObjectId::invalid(), Field);
  }

  /// Returns the descriptor of an interned var.
  const VarDesc &varDesc(VarId Id) const {
    assert(Id.index() < VarTable.size() && "var id out of range");
    return VarTable[Id.index()];
  }
  size_t numVars() const { return VarTable.size(); }
  size_t numObjects() const { return Objects.size(); }

  /// Returns the class of \p Obj.
  ClassId classOf(ObjectId Obj) const {
    assert(Obj.value() >= 1 && Obj.index() <= Objects.size() &&
           "dereference of null or unknown object");
    return Objects[Obj.index() - 1].Class;
  }

private:
  struct ObjectData {
    ClassId Class;
    std::vector<uint64_t> Fields;
  };

  const std::vector<uint64_t> &slot(ObjectId Obj) const {
    assert(Obj.value() >= 1 && Obj.index() <= Objects.size() &&
           "field access on null or unknown object");
    return Objects[Obj.index() - 1].Fields;
  }
  std::vector<uint64_t> &slotMutable(ObjectId Obj) {
    assert(Obj.value() >= 1 && Obj.index() <= Objects.size() &&
           "field access on null or unknown object");
    return Objects[Obj.index() - 1].Fields;
  }

  const Module &M;
  std::vector<ObjectData> Objects;
  std::unordered_map<uint32_t, uint64_t> Statics;
  std::unordered_map<uint64_t, uint32_t> VarIndex;
  std::vector<VarDesc> VarTable;
};

} // namespace cafa

#endif // CAFA_RT_OBJECTHEAP_H
