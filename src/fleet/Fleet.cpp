//===- fleet/Fleet.cpp - Supervised batch analysis ----------------------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The supervisor is a single-threaded event loop over child processes:
//
//   pending --start--> running --exit--> accepted (done / done:partial)
//      ^                  |                  |
//      |                  v                  v
//   backoff <--retry-- failed attempt    terminal failed:<cause>
//
// Concurrency comes entirely from the children; the loop itself only
// forks, polls, and kills, so there is no shared mutable state to
// race on and the aggregate is assembled sequentially in input order.
//
// The state machine lives in FleetEngine so two callers can pump it:
// runFleet (batch mode: add every job, tick until all terminal) and the
// analysis daemon (src/server/), which injects jobs while earlier ones
// are still running.  An interrupt (signal-driven in both callers)
// lands every unfinished job in the terminal "interrupted" state with
// its checkpoint directory intact, so the work is resumable.
//
//===----------------------------------------------------------------------===//

#include "fleet/Fleet.h"

#include "cafa/ReportJson.h"
#include "support/Format.h"
#include "support/Subprocess.h"
#include "support/Timer.h"

#include <csignal>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <set>
#include <sys/stat.h>
#include <unistd.h>

using namespace cafa;

namespace {

/// Worker exit codes (the offline_analyzer contract, pinned by
/// tests/integration/ExitCodesTest).  The retry policy keys off these.
enum AnalyzerExit {
  ExitNoRaces = 0,
  ExitRaces = 1,
  ExitUnreadable = 2,
  ExitDegraded = 3,
  ExitResumed = 4,
  ExitSpawnFailure = 127, // Subprocess convention: exec never ran
};

std::string readFileOrEmpty(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return "";
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

const char *signalName(int Sig) {
  switch (Sig) {
  case SIGKILL:
    return "SIGKILL";
  case SIGSEGV:
    return "SIGSEGV";
  case SIGABRT:
    return "SIGABRT";
  case SIGBUS:
    return "SIGBUS";
  case SIGTERM:
    return "SIGTERM";
  default:
    return "signal";
  }
}

/// Supervisor-side state of one job.  Owns the spec and the result so
/// the engine can accept jobs incrementally without a stable external
/// array to point into.
struct JobRun {
  enum class Phase { Pending, Running, Backoff, Terminal };

  FleetJob Spec;
  FleetJobResult Result;
  Phase State = Phase::Pending;
  /// Fresh object per attempt so exit state is unambiguous.
  std::unique_ptr<Subprocess> Child;
  unsigned Attempt = 0;          ///< attempts started so far
  uint64_t WatchdogNanos = 0;    ///< kill the child after this instant
  uint64_t NotBeforeNanos = 0;   ///< backoff release time
  uint64_t AttemptStartNanos = 0;
  bool KilledByWatchdog = false;
  Backoff Delays;
  std::string Dir, StdoutPath, StderrPath;

  JobRun() : Delays(BackoffPolicy()) {}
};

} // namespace

std::string cafa::fleetJobDir(const std::string &Root,
                              const std::string &JobId) {
  return Root + "/" + JobId;
}

double cafa::fleetDeadlineForAttempt(const FleetOptions &Options,
                                     unsigned Attempt) {
  if (Attempt <= 1)
    return Options.DeadlineMillis;
  // Escalation: each retry halves the budget, starting from the
  // caller's deadline or -- when none was set -- from half the watchdog
  // so the worker cuts itself into a partial report before the
  // supervisor has to kill it again.
  double Base = Options.DeadlineMillis > 0 ? Options.DeadlineMillis
                : Options.WatchdogMillis > 0 ? Options.WatchdogMillis / 2
                                             : 0;
  if (Base <= 0)
    return 0;
  return Base / static_cast<double>(1u << (Attempt - 1));
}

size_t cafa::fleetMemLimitForAttempt(const FleetOptions &Options,
                                     unsigned Attempt,
                                     size_t JobRlimitBytes) {
  if (Attempt <= 1)
    return Options.MemLimitBytes;
  size_t Rlimit =
      JobRlimitBytes > 0 ? JobRlimitBytes : Options.RlimitBytes;
  size_t Base = Options.MemLimitBytes > 0 ? Options.MemLimitBytes
                : Rlimit > 0              ? Rlimit / 2
                                          : 0;
  if (Base == 0)
    return 0;
  size_t Shrunk = Base >> (Attempt - 1);
  // Keep the soft limit meaningful: below ~1 MiB the ladder's Bfs floor
  // is the answer anyway and further halving just loses precision.
  return Shrunk > (1u << 20) ? Shrunk : (1u << 20);
}

namespace {

/// Builds the worker command line for one attempt.
std::vector<std::string> workerArgv(const FleetOptions &Options,
                                    const FleetJob &Job,
                                    const std::string &JobDir,
                                    unsigned Attempt) {
  std::vector<std::string> Argv = {Options.AnalyzerPath, "analyze",
                                   Job.TracePath, "--json"};
  // Retry is resume: every attempt points at the job's own snapshot
  // directory and adopts whatever a dead predecessor left behind.
  Argv.push_back("--checkpoint-dir=" + JobDir);
  Argv.push_back("--resume");
  if (Options.CheckpointEveryMillis > 0)
    Argv.push_back(formatString("--checkpoint-every=%g",
                                Options.CheckpointEveryMillis));
  if (Options.AnalysisThreads > 0)
    Argv.push_back(
        formatString("--analysis-threads=%u", Options.AnalysisThreads));
  if (Options.IngestThreads > 0)
    Argv.push_back(
        formatString("--ingest-threads=%u", Options.IngestThreads));
  if (Options.WindowEvents > 0)
    Argv.push_back(formatString("--window=%llu",
                                static_cast<unsigned long long>(
                                    Options.WindowEvents)));
  if (Options.Strict)
    Argv.push_back("--strict");
  if (double Deadline = fleetDeadlineForAttempt(Options, Attempt);
      Deadline > 0)
    Argv.push_back(formatString("--deadline=%g", Deadline));
  if (size_t Mem =
          fleetMemLimitForAttempt(Options, Attempt, Job.RlimitBytes);
      Mem > 0)
    Argv.push_back(formatString("--mem-limit=%zu", Mem));
  for (const std::string &Extra : Job.ExtraArgs)
    Argv.push_back(Extra);
  if (Options.ChaosArgsForAttempt)
    for (const std::string &Extra :
         Options.ChaosArgsForAttempt(Job, Attempt))
      Argv.push_back(Extra);
  return Argv;
}

std::string joinCommand(const std::vector<std::string> &Argv) {
  std::string Out;
  for (size_t I = 0; I < Argv.size(); ++I) {
    if (I)
      Out += " ";
    Out += Argv[I];
  }
  return Out;
}

/// Starts attempt (Run.Attempt + 1) of \p Run's job.
void startAttempt(JobRun &Run, const FleetOptions &Options) {
  ++Run.Attempt;
  Run.KilledByWatchdog = false;
  Run.AttemptStartNanos = wallTimeNanos();
  if (Options.WatchdogMillis > 0)
    Run.WatchdogNanos =
        Run.AttemptStartNanos +
        static_cast<uint64_t>(Options.WatchdogMillis * 1e6);

  SubprocessOptions SubOpts;
  SubOpts.Argv = workerArgv(Options, Run.Spec, Run.Dir, Run.Attempt);
  SubOpts.StdoutPath = Run.StdoutPath;
  SubOpts.StderrPath = Run.StderrPath;
  SubOpts.MemLimitBytes = Run.Spec.RlimitBytes > 0 ? Run.Spec.RlimitBytes
                                                   : Options.RlimitBytes;

  FleetAttempt Attempt;
  Attempt.Attempt = Run.Attempt;
  Attempt.Command = joinCommand(SubOpts.Argv);
  Run.Result.History.push_back(Attempt);

  Run.Child = std::make_unique<Subprocess>();
  // A fork-time failure (fd/process exhaustion) leaves the child
  // un-started; the reap phase synthesizes the 127 spawn failure.
  (void)Run.Child->start(SubOpts);
  Run.State = JobRun::Phase::Running;
}

/// Classifies a finished attempt.  Returns true when the attempt's
/// report is accepted (job terminal in a done state).
bool classifyAttempt(JobRun &Run, const FleetOptions &Options,
                     const SubprocessExit &Exit) {
  FleetAttempt &Attempt = Run.Result.History.back();
  Attempt.WallMillis =
      static_cast<double>(wallTimeNanos() - Run.AttemptStartNanos) / 1e6;
  Attempt.ExitCode = Exit.Exited ? Exit.ExitCode : -1;
  Attempt.Signaled = Exit.Signaled;
  Attempt.Signal = Exit.Signal;
  Attempt.TimedOut = Run.KilledByWatchdog;

  FleetJobResult &Result = Run.Result;
  if (Exit.Exited) {
    switch (Exit.ExitCode) {
    case ExitNoRaces:
    case ExitRaces:
    case ExitResumed:
      Result.State = "done";
      Result.Partial = false;
      Result.Resumed |= Exit.ExitCode == ExitResumed;
      return true;
    case ExitDegraded:
      // The worker already degraded gracefully (salvaged input or a
      // deadline-cut partial report).  Retrying cannot improve on a
      // salvage incident, and a deadline cut is usually *our own*
      // escalation policy at work -- accept the partial report.
      Result.State = "done:partial";
      Result.Partial = true;
      return true;
    case ExitUnreadable:
      // Permanent: the input itself is bad; no retry can fix it.
      Attempt.Cause = "unreadable";
      break;
    case ExitSpawnFailure:
      // exec never ran (bad analyzer path); retrying would loop.
      Attempt.Cause = "spawn";
      break;
    default:
      Attempt.Cause = formatString("exit%d", Exit.ExitCode);
      break;
    }
  } else if (Exit.Signaled) {
    size_t Rlimit = Run.Spec.RlimitBytes > 0 ? Run.Spec.RlimitBytes
                                             : Options.RlimitBytes;
    if (Run.KilledByWatchdog)
      Attempt.Cause = "hung";
    else if (Exit.Signal == SIGABRT && Rlimit > 0)
      // Under an RLIMIT_AS jail, a blown allocation surfaces as
      // bad_alloc -> terminate -> SIGABRT.  Best-effort label; a
      // genuine assert also aborts, and retries handle both the same.
      Attempt.Cause = "oom";
    else
      Attempt.Cause = formatString("crash-%s", signalName(Exit.Signal));
  } else {
    Attempt.Cause = "spawn";
  }
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// FleetEngine
//===----------------------------------------------------------------------===//

struct FleetEngine::Impl {
  FleetOptions Options;
  /// deque, not vector: addJob() while step() has children running must
  /// not move JobRun objects (each owns a live Subprocess).
  std::deque<JobRun> Runs;
  std::set<std::string> Ids;
  size_t Terminal = 0;
  size_t Running = 0;
  bool SetupDone = false;
  bool Launching = true;
  bool Interrupted = false;
  unsigned MaxAttempts = 1;
  unsigned Workers = 1;
};

FleetEngine::FleetEngine(const FleetOptions &Options)
    : I(std::make_unique<Impl>()) {
  I->Options = Options;
  I->MaxAttempts = Options.MaxAttempts > 0 ? Options.MaxAttempts : 1;
  I->Workers = Options.Workers > 0 ? Options.Workers : 1;
}

FleetEngine::~FleetEngine() {
  // Never leak workers past the engine: a caller that abandons the
  // batch (error path, daemon teardown) must not leave orphans running.
  for (JobRun &Run : I->Runs)
    if (Run.State == JobRun::Phase::Running && Run.Child &&
        Run.Child->running())
      Run.Child->kill(SIGKILL);
}

Status FleetEngine::setup() {
  if (I->Options.AnalyzerPath.empty())
    return Status::error("fleet needs an analyzer binary path");
  if (::access(I->Options.AnalyzerPath.c_str(), X_OK) != 0)
    return Status::error("analyzer binary not executable: " +
                         I->Options.AnalyzerPath);
  if (I->Options.CheckpointRoot.empty())
    return Status::error("fleet needs a checkpoint root directory");
  ::mkdir(I->Options.CheckpointRoot.c_str(), 0755);
  struct stat St;
  if (::stat(I->Options.CheckpointRoot.c_str(), &St) != 0 ||
      !S_ISDIR(St.st_mode))
    return Status::error("cannot create checkpoint root " +
                         I->Options.CheckpointRoot);
  I->SetupDone = true;
  return Status::success();
}

Status FleetEngine::addJob(const FleetJob &Job) {
  if (!I->SetupDone)
    return Status::error("fleet engine used before setup()");
  if (Job.Id.empty())
    return Status::error("fleet job with empty id");
  if (!I->Ids.insert(Job.Id).second)
    return Status::error("duplicate fleet job id '" + Job.Id + "'");

  size_t Index = I->Runs.size();
  I->Runs.emplace_back();
  JobRun &Run = I->Runs.back();
  Run.Spec = Job;
  Run.Result.Id = Job.Id;
  Run.Result.TracePath = Job.TracePath;
  Run.Dir = fleetJobDir(I->Options.CheckpointRoot, Job.Id);
  ::mkdir(Run.Dir.c_str(), 0755);
  Run.StdoutPath = Run.Dir + "/stdout";
  Run.StderrPath = Run.Dir + "/stderr";
  BackoffPolicy Policy = I->Options.Backoff;
  // Decorrelate the jobs' jitter streams deterministically.
  Policy.Seed = I->Options.Backoff.Seed + Index * 0x9E3779B97F4A7C15ull;
  Run.Delays = Backoff(Policy);

  // An interrupt already in effect applies to late arrivals too: the
  // job is terminal before it ever starts, checkpoint dir untouched.
  if (I->Interrupted) {
    Run.Result.State = "interrupted";
    Run.State = JobRun::Phase::Terminal;
    ++I->Terminal;
  }
  return Status::success();
}

void FleetEngine::step() {
  uint64_t Now = wallTimeNanos();

  // Launch phase: fill free worker slots in input order so scheduling
  // is reproducible given identical fault timings.
  if (I->Launching) {
    for (JobRun &Run : I->Runs) {
      if (I->Running >= I->Workers)
        break;
      bool Ready =
          Run.State == JobRun::Phase::Pending ||
          (Run.State == JobRun::Phase::Backoff && Now >= Run.NotBeforeNanos);
      if (!Ready)
        continue;
      startAttempt(Run, I->Options);
      ++I->Running;
    }
  }

  // Reap/watchdog phase.
  for (JobRun &Run : I->Runs) {
    if (Run.State != JobRun::Phase::Running)
      continue;
    bool Finished;
    SubprocessExit Exit;
    if (!Run.Child->running()) {
      // start() failed at fork time: synthesize the spawn failure.
      Finished = true;
      Exit.Exited = true;
      Exit.ExitCode = ExitSpawnFailure;
    } else if (Run.Child->poll()) {
      Finished = true;
      Exit = Run.Child->exitInfo();
    } else {
      if (Run.WatchdogNanos != 0 && Now >= Run.WatchdogNanos &&
          !Run.KilledByWatchdog) {
        Run.KilledByWatchdog = true;
        Run.Child->kill(SIGKILL);
      }
      Finished = false;
    }
    if (!Finished)
      continue;

    --I->Running;
    FleetJobResult &JobResult = Run.Result;
    JobResult.Attempts = Run.Attempt;
    if (classifyAttempt(Run, I->Options, Exit)) {
      // A worker that finished before an interrupt's SIGKILL landed
      // still counts: its report is complete and is accepted as usual.
      JobResult.FinalExitCode = Exit.ExitCode;
      JobResult.ReportJson = readFileOrEmpty(Run.StdoutPath);
      JobResult.ParseOk =
          parseRaceReportJson(JobResult.ReportJson, JobResult.Parsed)
              .ok();
      Run.State = JobRun::Phase::Terminal;
      ++I->Terminal;
      continue;
    }
    if (I->Interrupted) {
      // The kill we sent (or a coincident failure) during interrupt:
      // no retry, the job parks as resumable.
      JobResult.State = "interrupted";
      JobResult.FinalExitCode = Exit.Exited ? Exit.ExitCode : -1;
      Run.State = JobRun::Phase::Terminal;
      ++I->Terminal;
      continue;
    }
    const std::string &Cause = JobResult.History.back().Cause;
    bool Permanent = Cause == "unreadable" || Cause == "spawn";
    if (Permanent || Run.Attempt >= I->MaxAttempts) {
      JobResult.State = "failed:" + Cause;
      JobResult.FinalExitCode = Exit.Exited ? Exit.ExitCode : -1;
      Run.State = JobRun::Phase::Terminal;
      ++I->Terminal;
      continue;
    }
    double DelayMillis = Run.Delays.nextDelayMillis();
    JobResult.History.back().BackoffMillis = DelayMillis;
    Run.NotBeforeNanos =
        wallTimeNanos() + static_cast<uint64_t>(DelayMillis * 1e6);
    Run.State = JobRun::Phase::Backoff;
  }
}

void FleetEngine::stopLaunching() { I->Launching = false; }

void FleetEngine::interrupt() {
  if (I->Interrupted)
    return;
  I->Interrupted = true;
  I->Launching = false;
  for (JobRun &Run : I->Runs) {
    switch (Run.State) {
    case JobRun::Phase::Running:
      // SIGKILL now; the next step() reaps it into "interrupted" (or
      // accepts the report if the worker won the race and exited).
      if (Run.Child && Run.Child->running())
        Run.Child->kill(SIGKILL);
      break;
    case JobRun::Phase::Pending:
    case JobRun::Phase::Backoff:
      Run.Result.State = "interrupted";
      Run.Result.Attempts = Run.Attempt;
      Run.State = JobRun::Phase::Terminal;
      ++I->Terminal;
      break;
    case JobRun::Phase::Terminal:
      break;
    }
  }
}

bool FleetEngine::interrupted() const { return I->Interrupted; }

bool FleetEngine::allTerminal() const {
  return I->Terminal == I->Runs.size();
}

size_t FleetEngine::numJobs() const { return I->Runs.size(); }

size_t FleetEngine::numTerminal() const { return I->Terminal; }

size_t FleetEngine::numRunning() const { return I->Running; }

bool FleetEngine::hasJob(const std::string &Id) const {
  return I->Ids.count(Id) != 0;
}

const FleetJob &FleetEngine::job(size_t Index) const {
  return I->Runs[Index].Spec;
}

const FleetJobResult &FleetEngine::result(size_t Index) const {
  return I->Runs[Index].Result;
}

const char *FleetEngine::phase(size_t Index) const {
  switch (I->Runs[Index].State) {
  case JobRun::Phase::Pending:
    return "pending";
  case JobRun::Phase::Running:
    return "running";
  case JobRun::Phase::Backoff:
    return "backoff";
  case JobRun::Phase::Terminal:
    return "terminal";
  }
  return "terminal";
}

const FleetOptions &FleetEngine::options() const { return I->Options; }

//===----------------------------------------------------------------------===//
// runFleet
//===----------------------------------------------------------------------===//

Status cafa::runFleet(const std::vector<FleetJob> &Jobs,
                      const FleetOptions &Options, FleetResult &Result) {
  Result = FleetResult();
  if (Jobs.empty())
    return Status::error("fleet batch is empty");
  {
    // Validate the whole list before creating any per-job state so a
    // bad manifest fails without side effects beyond the root mkdir.
    std::set<std::string> Ids;
    for (const FleetJob &Job : Jobs) {
      if (Job.Id.empty())
        return Status::error("fleet job with empty id");
      if (!Ids.insert(Job.Id).second)
        return Status::error("duplicate fleet job id '" + Job.Id + "'");
    }
  }

  Timer BatchTimer;
  FleetEngine Engine(Options);
  if (Status S = Engine.setup(); !S.ok())
    return S;
  for (const FleetJob &Job : Jobs)
    if (Status S = Engine.addJob(Job); !S.ok())
      return S;

  while (!Engine.allTerminal()) {
    if (Options.StopFlag && *Options.StopFlag)
      Engine.interrupt();
    Engine.step();
    if (!Engine.allTerminal())
      ::usleep(500);
  }

  // Aggregate in input order.
  Result.Jobs.reserve(Jobs.size());
  for (size_t Index = 0; Index < Jobs.size(); ++Index)
    Result.Jobs.push_back(Engine.result(Index));

  FleetAggregator Aggregator(Options.MaxExemplars);
  for (const FleetJobResult &Job : Result.Jobs) {
    FleetJobStatus Row;
    Row.Id = Job.Id;
    Row.TracePath = Job.TracePath;
    Row.State = Job.State;
    Row.Attempts = Job.Attempts;
    Row.ExitCode = Job.FinalExitCode;
    Row.Resumed = Job.Resumed;
    Row.Partial = Job.Partial;
    Aggregator.addJob(Row, Job.ParseOk ? &Job.Parsed : nullptr);

    if (Job.State.rfind("failed:", 0) == 0)
      ++Result.Failed;
    else if (Job.State == "interrupted")
      ++Result.Interrupted;
    else if (Job.Partial)
      ++Result.Partial;
    else
      ++Result.Done;
    Result.Retries += Job.Attempts > 0 ? Job.Attempts - 1 : 0;
    Result.ResumedCompletions += Job.Resumed ? 1 : 0;
  }
  Result.WasInterrupted = Engine.interrupted();
  Result.DistinctRaces = Aggregator.numDistinctRaces();
  Result.AggregateJson = Aggregator.renderJson();
  Result.AggregateText = Aggregator.renderText();
  Result.WallMillis = BatchTimer.elapsedWallMillis();
  return Status::success();
}
