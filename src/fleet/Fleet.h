//===- fleet/Fleet.h - Supervised batch analysis ---------------*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet supervisor: runs a batch of trace analyses as isolated
/// child processes (fork/exec of offline_analyzer) and guarantees the
/// batch completes with a deterministic aggregate report even when
/// individual workers crash, hang, or exhaust memory.
///
/// Robustness moves up one level here.  PR 2 survived a corrupt record,
/// PR 3 survived a SIGKILL; the fleet survives *workers*: a per-job
/// watchdog kills hung children, failed attempts retry with capped
/// jittered backoff (support/Backoff.h), and -- the key reuse -- every
/// job owns a checkpoint sub-directory, so a retry *resumes from the
/// dead worker's last snapshot* instead of restarting.  PR 3's
/// crash-safety is the fleet's scheduling primitive, not a recovery
/// trick.
///
/// Repeated failures descend the degradation ladder: each retry passes a
/// tighter --deadline / --mem-limit so the worker sheds work gracefully
/// (a partial report) before the hard limits (watchdog, RLIMIT_AS jail)
/// kill it again.  A job that exhausts its attempts lands in a terminal
/// "failed:<cause>" state; the batch never wedges.  See docs/fleet.md
/// for the full state machine and policy tables.
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_FLEET_FLEET_H
#define CAFA_FLEET_FLEET_H

#include "cafa/FleetReport.h"
#include "support/Backoff.h"
#include "support/Status.h"

#include <csignal>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace cafa {

/// One analysis job in the batch.
struct FleetJob {
  std::string Id;        ///< unique, filesystem-safe (Manifest.h rules)
  std::string TracePath; ///< trace file handed to the worker
  /// RLIMIT_AS jail for this job's workers; 0 inherits
  /// FleetOptions::RlimitBytes.
  size_t RlimitBytes = 0;
  /// Extra analyzer arguments appended on every attempt.
  std::vector<std::string> ExtraArgs;
};

/// One worker attempt, for diagnostics and chaos-test pinning.
struct FleetAttempt {
  unsigned Attempt = 1;   ///< 1-based
  int ExitCode = -1;      ///< valid when the worker exited
  bool Signaled = false;
  int Signal = 0;
  bool TimedOut = false;  ///< the watchdog killed it
  double WallMillis = 0;
  double BackoffMillis = 0; ///< delay scheduled before the next attempt
  /// Why the attempt was not accepted ("hung", "oom", "crash",
  /// "unreadable", "spawn", "exit<code>"); empty for accepted attempts.
  std::string Cause;
  /// The exact worker command line, for replay and escalation pinning.
  std::string Command;
};

/// Terminal outcome of one job.
struct FleetJobResult {
  std::string Id;
  std::string TracePath;
  /// "done" | "done:partial" | "failed:<cause>" | "interrupted".
  /// "interrupted" means the supervisor was asked to stop before the job
  /// finished; its checkpoint directory is intact, so resubmitting the
  /// job against the same checkpoint root resumes it.
  std::string State;
  int FinalExitCode = -1;
  unsigned Attempts = 0;
  /// Some accepted attempt completed from a checkpoint (exit 4): the
  /// retry really did resume the dead worker's analysis.
  bool Resumed = false;
  bool Partial = false;
  /// stdout of the accepted attempt (the per-job JSON report); empty
  /// for failed jobs.
  std::string ReportJson;
  /// Parse of ReportJson when ParseOk.
  RaceDocument Parsed;
  bool ParseOk = false;
  std::vector<FleetAttempt> History;
};

/// Supervisor configuration.
struct FleetOptions {
  /// Path to the offline_analyzer binary (exec'd directly).
  std::string AnalyzerPath;
  /// Root directory for per-job state.  Each job gets its own
  /// sub-directory <root>/<job-id>/ holding its checkpoint snapshots
  /// and captured worker streams, so concurrent jobs can never collide
  /// on a snapshot file.
  std::string CheckpointRoot;
  /// Concurrent worker processes.
  unsigned Workers = 1;
  /// Attempts per job before the terminal failed state.
  unsigned MaxAttempts = 3;
  /// Wall-clock budget per attempt; a worker still running after this
  /// is SIGKILLed and the attempt classified "hung".  0 disables.
  double WatchdogMillis = 0;
  /// --checkpoint-every forwarded to workers (0 omits the flag;
  /// deadline cuts still snapshot).
  double CheckpointEveryMillis = 10;
  /// Default RLIMIT_AS jail for workers; 0 = no jail.
  size_t RlimitBytes = 0;
  /// Baseline soft limits passed to attempt 1 (0 omits the flag).
  /// Retries tighten these -- see deadlineForAttempt/memLimitForAttempt.
  double DeadlineMillis = 0;
  size_t MemLimitBytes = 0;
  /// Forwarded to workers when nonzero.
  unsigned AnalysisThreads = 0;
  unsigned IngestThreads = 0;
  /// Windowed streaming scan, forwarded as --window=<n> when nonzero
  /// (docs/windowed-analysis.md); reports stay byte-identical, so this
  /// is purely a worker-memory knob.
  uint64_t WindowEvents = 0;
  /// --strict ingestion.
  bool Strict = false;
  /// Retry-delay schedule; each job derives its own deterministic
  /// stream from (Backoff.Seed, job index).
  BackoffPolicy Backoff;
  /// Exemplar trace paths kept per aggregated race.
  unsigned MaxExemplars = 3;
  /// Chaos hook (tests only): extra analyzer args for (job, attempt).
  std::function<std::vector<std::string>(const FleetJob &, unsigned)>
      ChaosArgsForAttempt;
  /// When non-null, polled once per supervision tick.  A nonzero value
  /// interrupts the batch: no further launches, running workers are
  /// killed (their checkpoints survive), and every unfinished job lands
  /// in the terminal "interrupted" state.  Signal handlers set the flag;
  /// sig_atomic_t keeps the read async-signal-safe.
  const volatile std::sig_atomic_t *StopFlag = nullptr;
};

/// What the whole batch did.
struct FleetResult {
  /// One entry per job, in input (manifest) order.
  std::vector<FleetJobResult> Jobs;
  /// The merged cross-trace report (cafa/FleetReport.h).
  std::string AggregateJson;
  std::string AggregateText;
  unsigned Done = 0;
  unsigned Partial = 0;
  unsigned Failed = 0;
  unsigned Retries = 0;
  /// Jobs where a retry completed from a checkpoint (exit 4) -- the
  /// chaos suite's "retry is resume" accounting.
  unsigned ResumedCompletions = 0;
  /// Jobs cut short by FleetOptions::StopFlag; their checkpoints remain
  /// resumable.
  unsigned Interrupted = 0;
  /// The batch ended via StopFlag rather than by finishing every job.
  bool WasInterrupted = false;
  size_t DistinctRaces = 0;
  double WallMillis = 0;
};

/// The checkpoint/stream sub-directory runFleet uses for one job.
std::string fleetJobDir(const std::string &Root, const std::string &JobId);

/// The soft limits the escalation ladder passes to attempt \p Attempt
/// (1-based).  Exposed for tests pinning the descent.
double fleetDeadlineForAttempt(const FleetOptions &Options,
                               unsigned Attempt);
size_t fleetMemLimitForAttempt(const FleetOptions &Options,
                               unsigned Attempt,
                               size_t JobRlimitBytes);

/// The re-entrant core of the supervisor: the same launch/reap/backoff
/// state machine runFleet runs to completion, exposed incrementally so
/// a long-lived caller (the analysis daemon, src/server/) can inject
/// jobs while earlier ones are still running and pump the loop from its
/// own event loop.
///
/// Usage: construct, setup(), then any interleaving of addJob() and
/// step() -- step() performs one supervision tick (launch into free
/// worker slots, reap/watchdog running children) and never blocks, so
/// the caller owns the cadence.  interrupt() is the drain-hard path:
/// running workers are SIGKILLed (checkpoints survive) and every
/// unfinished job lands in the terminal "interrupted" state.
class FleetEngine {
public:
  explicit FleetEngine(const FleetOptions &Options);
  ~FleetEngine();
  FleetEngine(const FleetEngine &) = delete;
  FleetEngine &operator=(const FleetEngine &) = delete;

  /// Validates the analyzer binary and creates the checkpoint root.
  /// Must succeed before the first addJob().
  Status setup();

  /// Adds one job to the batch.  Legal at any time after setup(),
  /// including while other jobs run -- this is what makes the engine a
  /// daemon building block.  Fails on an empty or duplicate id.
  Status addJob(const FleetJob &Job);

  /// One supervision tick: launch pending/ready jobs into free worker
  /// slots (input order), then reap finished children and fire
  /// watchdogs.  Non-blocking; callers sleep between ticks.
  void step();

  /// Stops launching new attempts (graceful drain).  Running workers
  /// keep running to completion; pending/backoff jobs stay queued.
  /// One-way: launching never resumes on this engine.
  void stopLaunching();

  /// Hard drain: stopLaunching() plus SIGKILL for running workers and
  /// immediate terminal "interrupted" state for every job that has not
  /// finished.  Idempotent.  Checkpoint directories survive, so the
  /// jobs are resumable by a later batch over the same root.
  void interrupt();

  bool interrupted() const;
  bool allTerminal() const;
  size_t numJobs() const;
  size_t numTerminal() const;
  size_t numRunning() const;
  bool hasJob(const std::string &Id) const;

  /// The job spec / result / live phase at submission index \p I.
  /// result() is final once phase() returns "terminal"; phase() is one
  /// of "pending" | "running" | "backoff" | "terminal".
  const FleetJob &job(size_t I) const;
  const FleetJobResult &result(size_t I) const;
  const char *phase(size_t I) const;

  const FleetOptions &options() const;

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// Runs the batch to completion.  Fails fast (before starting any
/// worker) on an empty/duplicate job list, a missing analyzer binary,
/// or an unusable checkpoint root; individual worker failures never
/// fail the batch -- they land in per-job terminal states.
///
/// Implemented on FleetEngine: all jobs are added up front, then the
/// loop ticks until every job is terminal, polling
/// FleetOptions::StopFlag between ticks.
Status runFleet(const std::vector<FleetJob> &Jobs,
                const FleetOptions &Options, FleetResult &Result);

} // namespace cafa

#endif // CAFA_FLEET_FLEET_H
