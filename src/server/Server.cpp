//===- server/Server.cpp - Analysis daemon over a Unix socket -----------------===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// One single-threaded loop pumps everything, in a fixed order per tick:
//
//   signal check -> engine.step() -> harvest terminal jobs into the
//   store -> accept/answer control connections -> sleep 500us
//
// Concurrency lives in the worker children (as in runFleet); the loop
// itself only forks, polls, kills, and does tiny socket I/O, so there
// is no locking anywhere and every store append happens at a well
// defined point between engine ticks.  Durability is layered: workers
// checkpoint their own analysis state (support/Snapshot), the store
// journals terminal outcomes (cafa/RaceStore), and a daemon killed
// between the two loses nothing -- the job is simply not in the store
// yet, and resubmitting it resumes the worker from its checkpoint.
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "cafa/RaceStore.h"
#include "cafa/ReportJson.h"
#include "support/Format.h"
#include "support/Timer.h"
#include "trace/Manifest.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cafa;

namespace {

/// Reads one newline-terminated command (without the newline) from a
/// connection.  Bounded: a peer that sends garbage forever is cut off.
bool readCommand(int Fd, std::string &Out) {
  Out.clear();
  char Chunk[512];
  while (Out.size() < (64u << 10)) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0)
      return !Out.empty(); // EOF ends the command too
    for (ssize_t I = 0; I < N; ++I) {
      if (Chunk[I] == '\n')
        return true;
      Out.push_back(Chunk[I]);
    }
  }
  return false;
}

void writeAll(int Fd, std::string_view Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (N <= 0)
      return; // peer went away; nothing to do
    Off += static_cast<size_t>(N);
  }
}

std::vector<std::string> splitTokens(const std::string &Line) {
  std::vector<std::string> Out;
  size_t I = 0;
  while (I < Line.size()) {
    while (I < Line.size() && (Line[I] == ' ' || Line[I] == '\t' ||
                               Line[I] == '\r'))
      ++I;
    size_t Start = I;
    while (I < Line.size() && Line[I] != ' ' && Line[I] != '\t' &&
           Line[I] != '\r')
      ++I;
    if (I > Start)
      Out.push_back(Line.substr(Start, I - Start));
  }
  return Out;
}

FleetJobStatus rowFromResult(const FleetJobResult &Job) {
  FleetJobStatus Row;
  Row.Id = Job.Id;
  Row.TracePath = Job.TracePath;
  Row.State = Job.State;
  Row.Attempts = Job.Attempts;
  Row.ExitCode = Job.FinalExitCode;
  Row.Resumed = Job.Resumed;
  Row.Partial = Job.Partial;
  return Row;
}

} // namespace

struct Server::Impl {
  ServerOptions Options;
  RaceStore Store;
  std::unique_ptr<FleetEngine> Engine;
  int ListenFd = -1;
  /// Admission closed (drain command, or a signal).
  bool Draining = false;
  /// The fast-drain path is armed: no new launches, interrupt at the
  /// deadline.
  bool SignalDrain = false;
  uint64_t DrainDeadlineNanos = 0;
  /// Per-engine-index: terminal outcome already journaled (or
  /// deliberately skipped, for "interrupted").
  std::vector<char> Stored;
  size_t StoreErrors = 0;

  void harvest();
  void serveOnce();
  std::string handleCommand(const std::string &Line);
  std::string statusJson() const;
};

Server::Server(const ServerOptions &Options)
    : I(std::make_unique<Impl>()) {
  I->Options = Options;
}

Server::~Server() {
  if (I->ListenFd >= 0) {
    ::close(I->ListenFd);
    ::unlink(I->Options.SocketPath.c_str());
  }
}

Status Server::setup() {
  if (I->Options.SocketPath.empty())
    return Status::error("server needs a socket path");
  if (I->Options.StorePath.empty())
    return Status::error("server needs a store path");

  // Store first: a fingerprint mismatch must abort before we touch the
  // socket or spawn anything.
  if (Status S = I->Store.open(I->Options.StorePath); !S.ok())
    return S;

  I->Engine = std::make_unique<FleetEngine>(I->Options.Fleet);
  if (Status S = I->Engine->setup(); !S.ok())
    return S;

  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (I->Options.SocketPath.size() >= sizeof(Addr.sun_path))
    return Status::error("socket path too long: " +
                         I->Options.SocketPath);
  std::strcpy(Addr.sun_path, I->Options.SocketPath.c_str());

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Status::error("cannot create socket");
  // A predecessor killed with -9 leaves its socket file behind; this
  // daemon owns the path now.
  ::unlink(I->Options.SocketPath.c_str());
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(Fd, 16) != 0) {
    ::close(Fd);
    return Status::error("cannot bind/listen on " +
                         I->Options.SocketPath);
  }
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
  I->ListenFd = Fd;
  return Status::success();
}

void Server::Impl::harvest() {
  Stored.resize(Engine->numJobs(), 0);
  for (size_t Index = 0; Index < Engine->numJobs(); ++Index) {
    if (Stored[Index])
      continue;
    if (std::string_view(Engine->phase(Index)) != "terminal")
      continue;
    const FleetJobResult &Job = Engine->result(Index);
    if (Job.State == "interrupted") {
      // Resumable work, not a result: stays out of the store so a
      // resubmission re-runs (and resumes) it.
      Stored[Index] = 1;
      continue;
    }
    Status S = Store.appendJob(rowFromResult(Job),
                               Job.ParseOk ? &Job.Parsed : nullptr);
    if (!S.ok()) {
      // Disk trouble: count it, keep serving.  Not retried -- a
      // failing append would retry every 500us forever.
      std::fprintf(stderr, "cafa_server: store append failed: %s\n",
                   S.message().c_str());
      ++StoreErrors;
    }
    Stored[Index] = 1;
  }
}

std::string Server::Impl::statusJson() const {
  size_t Queue = Engine->numJobs() - Engine->numTerminal();
  std::string Out = formatString(
      "{\n  \"queue\": %zu, \"running\": %zu, \"draining\": %s,\n"
      "  \"jobs\": [",
      Queue, Engine->numRunning(), Draining ? "true" : "false");
  for (size_t Index = 0; Index < Engine->numJobs(); ++Index) {
    const FleetJobResult &Job = Engine->result(Index);
    Out += Index ? ",\n" : "\n";
    Out += formatString(
        "    {\"id\": \"%s\", \"phase\": \"%s\", \"state\": \"%s\"}",
        jsonEscape(Job.Id).c_str(), Engine->phase(Index),
        jsonEscape(Job.State).c_str());
  }
  RaceStore::Stats S = Store.stats();
  Out += formatString(
      "\n  ],\n"
      "  \"store\": {\"jobs\": %zu, \"done\": %zu, \"partial\": %zu, "
      "\"failed\": %zu, \"resumedCompletions\": %zu, "
      "\"distinctRaces\": %zu, \"journalBytes\": %zu, "
      "\"recoveredTail\": %s, \"storeErrors\": %zu}\n}\n",
      S.Jobs, S.Done, S.Partial, S.Failed, S.ResumedCompletions,
      S.DistinctRaces, S.JournalBytes,
      S.RecoveredTail ? "true" : "false", StoreErrors);
  return Out;
}

std::string Server::Impl::handleCommand(const std::string &Line) {
  std::vector<std::string> Tokens = splitTokens(Line);
  if (Tokens.empty())
    return "err malformed\n";
  const std::string &Cmd = Tokens[0];

  if (Cmd == "ping")
    return "ok pong\n";

  if (Cmd == "status")
    return statusJson();

  if (Cmd == "report")
    return Store.renderJson(Options.Fleet.MaxExemplars);

  if (Cmd == "compact") {
    if (Status S = Store.compact(); !S.ok())
      return "err " + S.message() + "\n";
    return "ok compacted\n";
  }

  if (Cmd == "drain") {
    // Graceful: admission closes now, every queued job still finishes;
    // the loop exits (code 0) once the engine is quiet.
    Draining = true;
    return "ok draining\n";
  }

  if (Cmd == "submit") {
    if (Tokens.size() < 3)
      return "err malformed\n";
    const std::string &Id = Tokens[1];
    if (Id.empty() || sanitizeJobId(Id) != Id)
      return "err bad-id\n";
    if (Draining)
      return "err draining\n";
    if (Store.hasJob(Id))
      // Already analyzed in some earlier batch: idempotent success, the
      // result is in the store.
      return "ok exists " + Id + "\n";
    if (Engine->hasJob(Id))
      return "ok active " + Id + "\n";
    if (Engine->numJobs() - Engine->numTerminal() >= Options.MaxQueue)
      return "err queue-full\n";
    FleetJob Job;
    Job.Id = Id;
    Job.TracePath = Tokens[2];
    Job.ExtraArgs.assign(Tokens.begin() + 3, Tokens.end());
    if (Status S = Engine->addJob(Job); !S.ok())
      return "err " + S.message() + "\n";
    return "ok queued " + Id + "\n";
  }

  return "err unknown-command\n";
}

void Server::Impl::serveOnce() {
  // Bounded accepts per tick so a chatty client cannot starve the
  // engine pump.
  for (int Burst = 0; Burst < 16; ++Burst) {
    int Conn = ::accept(ListenFd, nullptr, nullptr);
    if (Conn < 0)
      return; // EAGAIN and friends: nothing waiting
    timeval Timeout;
    Timeout.tv_sec = 0;
    Timeout.tv_usec = 250 * 1000;
    ::setsockopt(Conn, SOL_SOCKET, SO_RCVTIMEO, &Timeout,
                 sizeof(Timeout));
    std::string Line;
    if (readCommand(Conn, Line))
      writeAll(Conn, handleCommand(Line));
    else
      writeAll(Conn, "err malformed\n");
    ::close(Conn);
  }
}

int Server::run(const volatile std::sig_atomic_t *StopFlag) {
  for (;;) {
    uint64_t Now = wallTimeNanos();

    if (StopFlag && *StopFlag && !I->SignalDrain) {
      // Fast drain: stop admitting and launching; running workers get
      // the grace window, then a checkpoint-kill.
      I->SignalDrain = true;
      I->Draining = true;
      I->Engine->stopLaunching();
      I->DrainDeadlineNanos =
          Now + static_cast<uint64_t>(I->Options.DrainGraceMillis * 1e6);
    }
    if (I->SignalDrain && !I->Engine->interrupted() &&
        (Now >= I->DrainDeadlineNanos || I->Engine->numRunning() == 0))
      // Nothing running finishes the drain immediately; otherwise the
      // deadline fires.  interrupt() parks every unfinished job as
      // resumable "interrupted".
      I->Engine->interrupt();

    I->Engine->step();
    I->harvest();
    I->serveOnce();

    if (I->Draining && I->Engine->allTerminal())
      break;
    ::usleep(500);
  }
  I->harvest();

  // The destructor also cleans these up, but do it before exiting so a
  // monitoring client never sees an accepting socket on a dead daemon.
  ::close(I->ListenFd);
  ::unlink(I->Options.SocketPath.c_str());
  I->ListenFd = -1;

  for (size_t Index = 0; Index < I->Engine->numJobs(); ++Index)
    if (I->Engine->result(Index).State == "interrupted")
      return ServerExitInterrupted;
  return ServerExitClean;
}

Status cafa::serverRequest(const std::string &SocketPath,
                           const std::string &Command,
                           std::string &Response) {
  Response.clear();
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path))
    return Status::error("socket path too long: " + SocketPath);
  std::strcpy(Addr.sun_path, SocketPath.c_str());

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Status::error("cannot create socket");
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    ::close(Fd);
    return Status::error("cannot connect to " + SocketPath);
  }
  timeval Timeout;
  Timeout.tv_sec = 30;
  Timeout.tv_usec = 0;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));

  std::string Line = Command + "\n";
  writeAll(Fd, Line);
  ::shutdown(Fd, SHUT_WR);

  char Chunk[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      ::close(Fd);
      return Status::error("read from " + SocketPath + " failed");
    }
    if (N == 0)
      break;
    Response.append(Chunk, static_cast<size_t>(N));
  }
  ::close(Fd);
  return Status::success();
}
