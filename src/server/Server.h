//===- server/Server.h - Analysis daemon over a Unix socket ----*- C++ -*-===//
//
// Part of the CAFA reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Analysis-as-a-service: a long-running daemon that wraps the fleet
/// supervision loop (fleet/FleetEngine) behind a Unix-domain-socket
/// control plane.  Traces are submitted while earlier ones run; each
/// job executes as the same isolated, watchdog'd, checkpoint-resuming
/// offline_analyzer worker the batch supervisor uses, and every
/// terminal outcome is appended to a persistent cross-trace store
/// (cafa/RaceStore) that accumulates across daemon restarts.
///
/// Protocol: one newline-terminated command per connection; the daemon
/// replies and closes.  Commands: submit / status / report / drain /
/// compact / ping -- docs/server.md specifies request and response
/// grammar, lifecycle, and the exit-code contract.
///
/// Lifecycle: the loop is single-threaded (the same "concurrency lives
/// in the children" design as runFleet), pumping the engine and the
/// socket alternately.  A `drain` command stops admission and finishes
/// every queued job (exit 0).  SIGTERM/SIGINT drain *fast*: stop
/// launching, give running workers a grace window to finish, then
/// checkpoint-kill the rest; jobs cut short stay out of the store and
/// resume when resubmitted to a restarted daemon (exit 6 when anything
/// was cut short, else 0).
///
//===----------------------------------------------------------------------===//

#ifndef CAFA_SERVER_SERVER_H
#define CAFA_SERVER_SERVER_H

#include "fleet/Fleet.h"
#include "support/Status.h"

#include <csignal>
#include <string>

namespace cafa {

/// Daemon exit codes (pinned by tests/integration/ExitCodesTest).
enum ServerExitCode {
  ServerExitClean = 0,       ///< drained with nothing left undone
  ServerExitUsage = 2,       ///< bad flags or setup failure
  ServerExitInterrupted = 6, ///< drained, but jobs were cut short
                             ///< (their checkpoints remain resumable)
};

struct ServerOptions {
  /// Unix-domain socket the control plane listens on.  A stale file
  /// from a killed predecessor is unlinked at bind time.
  std::string SocketPath;
  /// RaceStore journal path (created on first open).
  std::string StorePath;
  /// Worker supervision config, exactly as for runFleet.  The daemon
  /// re-adopts orphaned checkpoint directories under
  /// Fleet.CheckpointRoot: a resubmitted job id resumes whatever
  /// snapshot a dead daemon's worker left there.
  FleetOptions Fleet;
  /// Admission control: submissions are refused ("err queue-full")
  /// while this many jobs are queued or running.
  size_t MaxQueue = 64;
  /// Signal-drain grace: how long running workers may keep going after
  /// SIGTERM/SIGINT before they are checkpoint-killed.  0 kills
  /// immediately.
  double DrainGraceMillis = 5000;
};

/// The daemon.  Construct, setup(), then run() until a drain command or
/// signal ends the loop; run() returns the process exit code.
class Server {
public:
  explicit Server(const ServerOptions &Options);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Opens (replaying) the store, validates the fleet config, binds the
  /// socket.  Nothing runs yet.
  Status setup();

  /// The event loop.  \p StopFlag is set by the signal handlers;
  /// a nonzero value starts the fast drain described above.
  int run(const volatile std::sig_atomic_t *StopFlag);

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// Client side: sends one \p Command to the daemon at \p SocketPath and
/// returns the full response.  Used by `cafa_server ctl` and the tests.
Status serverRequest(const std::string &SocketPath,
                     const std::string &Command, std::string &Response);

} // namespace cafa

#endif // CAFA_SERVER_SERVER_H
